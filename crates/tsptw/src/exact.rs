//! Exact TSPTW via bitmask dynamic programming.
//!
//! State: `(visited mask, last node) → earliest completion time at the last
//! node`. Because arriving earlier at a node never hurts under hard windows
//! (waiting is always allowed), earliest-completion dominance is exact: the
//! DP finds the minimum feasible route travel time or proves infeasibility.
//! Complexity `O(n² · 2ⁿ)` — practical up to `n ≈ 16`, which covers the
//! worker route sizes of the paper's instances and gives the ground truth
//! the heuristic and RL solvers are tested against.

use crate::error::SolveError;
use crate::problem::{TsptwProblem, TsptwSolution, TsptwSolver};

/// Exact DP solver; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ExactDpSolver {
    /// Hard cap on instance size (the DP table is `2ⁿ·n` floats).
    pub max_nodes: usize,
}

impl ExactDpSolver {
    /// Creates the solver with the default 16-node cap.
    pub fn new() -> Self {
        Self { max_nodes: 16 }
    }
}

impl TsptwSolver for ExactDpSolver {
    fn name(&self) -> &str {
        "exact-dp"
    }

    fn solve(&self, p: &TsptwProblem) -> Result<TsptwSolution, SolveError> {
        let n = p.nodes.len();
        if n == 0 {
            let rtt = p.travel.travel_time(&p.start, &p.end);
            return if p.depart + rtt <= p.deadline + 1e-6 {
                Ok(TsptwSolution { order: vec![], rtt })
            } else {
                Err(SolveError::Infeasible)
            };
        }
        if n > self.max_nodes {
            return Err(SolveError::InvalidInput(format!(
                "ExactDpSolver limited to {} nodes, got {n}",
                self.max_nodes
            )));
        }

        let full = 1usize << n;
        let mut dp = vec![f64::INFINITY; full * n];
        let mut parent = vec![usize::MAX; full * n];

        for (i, node) in p.nodes.iter().enumerate() {
            let arrival = p.depart + p.travel.travel_time(&p.start, &node.loc);
            if let Some(begin) = node.window.service_start(arrival, node.service) {
                dp[(1 << i) * n + i] = begin + node.service;
            }
        }

        for mask in 1..full {
            for last in 0..n {
                if mask & (1 << last) == 0 {
                    continue;
                }
                let done = dp[mask * n + last];
                if !done.is_finite() {
                    continue;
                }
                for next in 0..n {
                    if mask & (1 << next) != 0 {
                        continue;
                    }
                    let node = &p.nodes[next];
                    let arrival = done + p.travel.travel_time(&p.nodes[last].loc, &node.loc);
                    let Some(begin) = node.window.service_start(arrival, node.service) else {
                        continue;
                    };
                    let completion = begin + node.service;
                    let slot = (mask | (1 << next)) * n + next;
                    if completion < dp[slot] {
                        dp[slot] = completion;
                        parent[slot] = last;
                    }
                }
            }
        }

        let mut best_arrival = f64::INFINITY;
        let mut best_last = usize::MAX;
        for last in 0..n {
            let done = dp[(full - 1) * n + last];
            if !done.is_finite() {
                continue;
            }
            let arrival = done + p.travel.travel_time(&p.nodes[last].loc, &p.end);
            if arrival < best_arrival {
                best_arrival = arrival;
                best_last = last;
            }
        }
        if best_last == usize::MAX || best_arrival > p.deadline + 1e-6 {
            return Err(SolveError::Infeasible);
        }

        let mut order = Vec::with_capacity(n);
        let mut mask = full - 1;
        let mut last = best_last;
        while last != usize::MAX {
            order.push(last);
            let prev = parent[mask * n + last];
            mask &= !(1 << last);
            last = prev;
        }
        order.reverse();
        Ok(TsptwSolution { order, rtt: best_arrival - p.depart })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TsptwNode;
    use smore_geo::{Point, TimeWindow, TravelTimeModel};

    fn node(x: f64, y: f64, tw: (f64, f64), service: f64) -> TsptwNode {
        TsptwNode { loc: Point::new(x, y), window: TimeWindow::new(tw.0, tw.1), service }
    }

    fn base(nodes: Vec<TsptwNode>) -> TsptwProblem {
        TsptwProblem {
            start: Point::new(0.0, 0.0),
            end: Point::new(100.0, 0.0),
            depart: 0.0,
            deadline: 1000.0,
            nodes,
            travel: TravelTimeModel::new(1.0),
        }
    }

    #[test]
    fn empty_instance_is_direct_trip() {
        let p = base(vec![]);
        let s = ExactDpSolver::new().solve(&p).unwrap();
        assert_eq!(s.order, Vec::<usize>::new());
        assert!((s.rtt - 100.0).abs() < 1e-9);
    }

    #[test]
    fn windows_force_non_geometric_order() {
        // Geometric order would be 25 → 75, but windows force 75 first.
        let p = base(vec![node(25.0, 0.0, (150.0, 300.0), 0.0), node(75.0, 0.0, (0.0, 80.0), 0.0)]);
        let s = ExactDpSolver::new().solve(&p).unwrap();
        assert_eq!(s.order, vec![1, 0]);
        let expected = p.evaluate_order(&[1, 0]).unwrap();
        assert!((s.rtt - expected).abs() < 1e-9);
    }

    #[test]
    fn infeasible_window_detected() {
        let p = base(vec![node(50.0, 0.0, (0.0, 10.0), 5.0)]);
        assert_eq!(ExactDpSolver::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn deadline_infeasibility_detected() {
        let mut p = base(vec![node(0.0, 200.0, (0.0, 900.0), 0.0)]);
        p.deadline = 150.0;
        assert_eq!(ExactDpSolver::new().solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn oversized_instance_is_invalid_input_not_panic() {
        let nodes = (0..20).map(|i| node(i as f64, 0.0, (0.0, 900.0), 0.0)).collect();
        let p = base(nodes);
        match ExactDpSolver::new().solve(&p) {
            Err(SolveError::InvalidInput(msg)) => assert!(msg.contains("20")),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let solver = ExactDpSolver::new();
        for trial in 0..30 {
            let n = rng.gen_range(1..=6);
            let nodes: Vec<TsptwNode> = (0..n)
                .map(|_| {
                    let start = rng.gen_range(0.0..200.0);
                    node(
                        rng.gen_range(0.0..100.0),
                        rng.gen_range(0.0..100.0),
                        (start, start + rng.gen_range(50.0..300.0)),
                        rng.gen_range(0.0..10.0),
                    )
                })
                .collect();
            let p = base(nodes);
            let brute = brute_force(&p);
            let dp = solver.solve(&p);
            match (brute, dp) {
                (None, Err(SolveError::Infeasible)) => {}
                (Some(b), Ok(d)) => {
                    assert!((b - d.rtt).abs() < 1e-6, "trial {trial}: brute {b} vs dp {}", d.rtt)
                }
                (b, d) => panic!("trial {trial}: feasibility disagreement {b:?} vs {d:?}"),
            }
        }
    }

    fn brute_force(p: &TsptwProblem) -> Option<f64> {
        let mut idx: Vec<usize> = (0..p.nodes.len()).collect();
        let mut best: Option<f64> = None;
        permute(&mut idx, 0, &mut |order| {
            if let Some(rtt) = p.evaluate_order(order) {
                best = Some(best.map_or(rtt, |b: f64| b.min(rtt)));
            }
        });
        best
    }

    fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, f);
            idx.swap(k, i);
        }
    }
}
