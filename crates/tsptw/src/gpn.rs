//! RL-based TSPTW solver: a graph pointer network trained hierarchically
//! (Ma et al. [16]), adapted as the paper describes so that both the origin
//! and the distinct final destination inform the decoding query.
//!
//! Two models share one architecture:
//!
//! * the **lower model** is trained with the lower reward — the number of
//!   nodes meeting their time-window constraint;
//! * the **upper model** starts from the trained lower weights and is
//!   fine-tuned with the upper reward — the lower reward minus a penalty on
//!   the route travel time.
//!
//! Decoding masks visited nodes and nodes whose window can no longer be met
//! from the current position, so every step is locally feasible; the decoded
//! order is still verified end-to-end before being returned (the final
//! deadline can only be checked globally). The paper notes this solver may
//! raise "false alarms" — see [`crate::HybridSolver`] for the repair path.

use crate::error::SolveError;
use crate::problem::{TsptwProblem, TsptwSolution, TsptwSolver};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore_nn::{
    episode_seed, parallel_map, parallel_map_owned, sample_row, Adam, Encoder, GradBatch, Linear,
    Matrix, ParamStore, Tape, TapePool, Var, NEG_INF,
};

/// Architecture hyperparameters of the pointer network.
#[derive(Debug, Clone)]
pub struct GpnConfig {
    /// Embedding width.
    pub d_model: usize,
    /// Attention heads in the encoder.
    pub heads: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Logit clipping constant `C` (tanh clipping, as in Bello et al.).
    pub clip: f32,
}

impl Default for GpnConfig {
    fn default() -> Self {
        Self { d_model: 32, heads: 4, enc_layers: 2, clip: 10.0 }
    }
}

/// Per-node feature width: x, y, window start/end, service, distance to the
/// route start, distance to the route end.
const FEATURES: usize = 7;
/// Extra context scalars: elapsed-time fraction, remaining-time fraction,
/// normalized start x/y, normalized end x/y.
const CTX_EXTRA: usize = 6;

/// The pointer-network policy (one of the two hierarchical models).
#[derive(Debug, Clone)]
pub struct GpnPolicy {
    cfg: GpnConfig,
    /// Trainable parameters.
    pub store: ParamStore,
    embed: Linear,
    encoder: Encoder,
    ctx: Linear,
    wq: Linear,
    wk: Linear,
}

/// Encoder state of one problem on a (possibly shared) tape: the node
/// embeddings, their pointer keys, and the graph mean — everything the
/// decode loop reads. Produced by [`GpnPolicy::encode_batch`].
#[derive(Clone, Copy)]
pub struct GpnEncoding {
    enc: Var,
    keys: Var,
    graph_mean: Var,
}

/// Result of one decode pass.
pub struct Decode {
    /// Visiting order (may be partial if decoding got stuck).
    pub order: Vec<usize>,
    /// Log-probability tape nodes of each decision (for REINFORCE).
    pub logps: Vec<Var>,
    /// Whether all nodes were placed.
    pub complete: bool,
}

impl GpnPolicy {
    /// Creates a randomly initialized policy.
    pub fn new(cfg: GpnConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let embed = Linear::new(&mut store, "gpn.embed", FEATURES, cfg.d_model, true, &mut rng);
        let encoder = Encoder::new(
            &mut store,
            "gpn.enc",
            cfg.d_model,
            cfg.heads,
            cfg.d_model * 2,
            cfg.enc_layers,
            &mut rng,
        );
        let ctx = Linear::new(
            &mut store,
            "gpn.ctx",
            2 * cfg.d_model + CTX_EXTRA,
            cfg.d_model,
            true,
            &mut rng,
        );
        let wq = Linear::new(&mut store, "gpn.wq", cfg.d_model, cfg.d_model, false, &mut rng);
        let wk = Linear::new(&mut store, "gpn.wk", cfg.d_model, cfg.d_model, false, &mut rng);
        Self { cfg, store, embed, encoder, ctx, wq, wk }
    }

    /// Serializes the trained parameters to JSON.
    pub fn to_json(&self) -> String {
        self.store.to_json()
    }

    /// Restores a policy saved with [`GpnPolicy::to_json`] into a freshly
    /// built network of the same configuration.
    pub fn from_json(cfg: GpnConfig, json: &str) -> Result<Self, serde_json::Error> {
        let mut policy = Self::new(cfg, 0);
        policy.store.load_values_from(&ParamStore::from_json(json)?);
        Ok(policy)
    }

    /// Normalized per-node feature matrix for `p`.
    fn features(p: &TsptwProblem) -> Matrix {
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            p.start.x.min(p.end.x),
            p.start.y.min(p.end.y),
            p.start.x.max(p.end.x),
            p.start.y.max(p.end.y),
        );
        for n in &p.nodes {
            min_x = min_x.min(n.loc.x);
            min_y = min_y.min(n.loc.y);
            max_x = max_x.max(n.loc.x);
            max_y = max_y.max(n.loc.y);
        }
        let span_x = (max_x - min_x).max(1.0);
        let span_y = (max_y - min_y).max(1.0);
        let diag = span_x.hypot(span_y);
        let horizon = (p.deadline - p.depart).max(1.0);

        let mut m = Matrix::zeros(p.nodes.len(), FEATURES);
        for (i, n) in p.nodes.iter().enumerate() {
            m.set(i, 0, ((n.loc.x - min_x) / span_x) as f32);
            m.set(i, 1, ((n.loc.y - min_y) / span_y) as f32);
            m.set(i, 2, (((n.window.start - p.depart) / horizon).clamp(0.0, 2.0)) as f32);
            m.set(i, 3, (((n.window.end - p.depart) / horizon).clamp(0.0, 2.0)) as f32);
            m.set(i, 4, ((n.service / horizon).min(1.0)) as f32);
            m.set(i, 5, ((p.start.distance(&n.loc) / diag).min(2.0)) as f32);
            m.set(i, 6, ((p.end.distance(&n.loc) / diag).min(2.0)) as f32);
        }
        m
    }

    /// Encodes a batch of problems in one segmented pass (DESIGN.md §13):
    /// all problems' node features are row-stacked, so the embedding, the
    /// Transformer encoder, and the pointer key projection each run once
    /// per layer for the whole batch. Per-problem gradients split back out
    /// through the segment sinks, bit-identical to encoding each problem
    /// alone. Every problem must have at least one node.
    pub fn encode_batch(&self, tape: &mut Tape, problems: &[&TsptwProblem]) -> Vec<GpnEncoding> {
        assert!(!problems.is_empty(), "encode_batch needs at least one problem");
        let mut offsets = vec![0usize];
        for p in problems {
            assert!(!p.nodes.is_empty(), "encode_batch requires non-empty problems");
            offsets.push(offsets[offsets.len() - 1] + p.nodes.len());
        }
        let total = offsets[offsets.len() - 1];
        let mut feats_all = Matrix::zeros(total, FEATURES);
        for (e, p) in problems.iter().enumerate() {
            let f = Self::features(p);
            for r in 0..p.nodes.len() {
                feats_all.row_slice_mut(offsets[e] + r).copy_from_slice(f.row_slice(r));
            }
        }
        let seg = tape.segments(offsets.clone());
        let fv = tape.constant(feats_all);
        let embedded = self.embed.forward_seg(tape, &self.store, fv, seg);
        let enc_all = self.encoder.forward_seg(tape, &self.store, embedded, seg);
        let keys_all = self.wk.forward_seg(tape, &self.store, enc_all, seg);
        problems
            .iter()
            .enumerate()
            .map(|(e, p)| {
                let enc = tape.slice_rows(enc_all, offsets[e], p.nodes.len());
                let keys = tape.slice_rows(keys_all, offsets[e], p.nodes.len());
                let graph_mean = tape.mean_rows(enc);
                GpnEncoding { enc, keys, graph_mean }
            })
            .collect()
    }

    /// Runs one decode over `p`, recording decisions on `tape`.
    ///
    /// `rng = None` decodes greedily (inference); `Some` samples (training).
    /// Delegates to [`GpnPolicy::encode_batch`] with a single-problem batch
    /// and then [`GpnPolicy::decode_with`], so solo and batched decodes are
    /// one code path.
    pub fn decode(&self, tape: &mut Tape, p: &TsptwProblem, rng: Option<&mut SmallRng>) -> Decode {
        if p.nodes.is_empty() {
            return Decode { order: vec![], logps: vec![], complete: true };
        }
        let mut encs = self.encode_batch(tape, &[p]);
        // smore-lint: allow(E1): encode_batch returns exactly one encoding
        // per input problem.
        let enc = encs.pop().expect("encode_batch yields one encoding per problem");
        self.decode_with(tape, p, &enc, rng)
    }

    /// Decodes `p` from a precomputed [`GpnEncoding`] (typically one slot
    /// of an [`GpnPolicy::encode_batch`] call on a shared tape).
    pub fn decode_with(
        &self,
        tape: &mut Tape,
        p: &TsptwProblem,
        encoding: &GpnEncoding,
        mut rng: Option<&mut SmallRng>,
    ) -> Decode {
        let n = p.nodes.len();
        if n == 0 {
            return Decode { order: vec![], logps: vec![], complete: true };
        }
        let horizon = (p.deadline - p.depart).max(1.0);
        let GpnEncoding { enc, keys, graph_mean } = *encoding;

        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut logps = Vec::with_capacity(n);
        let mut t = p.depart;
        let mut at = p.start;

        for _step in 0..n {
            // Local feasibility mask: unvisited and window still reachable.
            let mut mask = Matrix::zeros(1, n);
            let mut any = false;
            for (i, node) in p.nodes.iter().enumerate() {
                let arrival = t + p.travel.travel_time(&at, &node.loc);
                let feasible =
                    !visited[i] && node.window.service_start(arrival, node.service).is_some();
                if feasible {
                    any = true;
                } else {
                    mask.set(0, i, NEG_INF);
                }
            }
            if !any {
                return Decode { order, logps, complete: false };
            }

            // Context: last location embedding (or graph mean at step 0),
            // graph mean, plus time and endpoint scalars.
            let last_emb = match order.last() {
                Some(&i) => tape.gather_rows(enc, &[i]),
                None => graph_mean,
            };
            let extra = tape.constant(Matrix::row(vec![
                (((t - p.depart) / horizon) as f32).min(2.0),
                (((p.deadline - t) / horizon) as f32).max(-1.0),
                (at.x - p.start.x.min(p.end.x)) as f32 / 1000.0,
                (at.y - p.start.y.min(p.end.y)) as f32 / 1000.0,
                (p.end.x - at.x) as f32 / 1000.0,
                (p.end.y - at.y) as f32 / 1000.0,
            ]));
            let ctx_in = tape.concat_cols(&[graph_mean, last_emb, extra]);
            let ctx = self.ctx.forward(tape, &self.store, ctx_in);
            let q = self.wq.forward(tape, &self.store, ctx);

            // Pointer logits u_i = C·tanh(q·k_i / sqrt(d)).
            let kt = tape.transpose(keys);
            let scores = tape.matmul(q, kt);
            let scaled = tape.scale(scores, 1.0 / (self.cfg.d_model as f32).sqrt());
            let tanhed = tape.tanh(scaled);
            let clipped = tape.scale(tanhed, self.cfg.clip);
            let probs = tape.softmax_rows(clipped, Some(&mask));
            let logp = tape.log_softmax_rows(clipped, Some(&mask));

            let choice = match rng.as_deref_mut() {
                Some(r) => sample_row(tape.value(probs), 0, r),
                None => smore_nn::argmax_row(tape.value(probs), 0),
            };
            logps.push(tape.pick(logp, 0, choice));

            let node = &p.nodes[choice];
            let arrival = t + p.travel.travel_time(&at, &node.loc);
            let begin = node
                .window
                .service_start(arrival, node.service)
                // smore-lint: allow(E1): the feasibility mask zeroed every
                // node whose window cannot admit service before this pick.
                .expect("masked decode only offers feasible nodes");
            t = begin + node.service;
            at = node.loc;
            visited[choice] = true;
            order.push(choice);
        }
        Decode { order, logps, complete: true }
    }
}

/// Rewards for the two hierarchical training stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardLevel {
    /// Lower reward: the number of nodes meeting their time window.
    Lower,
    /// Upper reward: lower reward minus a route-length penalty.
    Upper,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct GpnTrainConfig {
    /// Instances per REINFORCE batch.
    pub batch: usize,
    /// Gradient steps for the lower stage.
    pub iters_lower: usize,
    /// Gradient steps for the upper stage.
    pub iters_upper: usize,
    /// Adam learning rate (paper: 1e-4; a larger default speeds up the
    /// scaled-down experiments).
    pub lr: f32,
    /// Weight of the route-time penalty in the upper reward.
    pub length_penalty: f64,
    /// Worker threads for batch rollout/backward (`0` = all available
    /// cores). Trained parameters are bit-identical for every value: each
    /// episode draws a schedule-derived RNG seed, and gradients merge in
    /// episode order.
    pub threads: usize,
    /// Episodes encoded per shared tape (DESIGN.md §13): the batched
    /// encoder runs once for this many problems, and one backward pass
    /// splits their gradients back out. Trained parameters are
    /// bit-identical for every value (`0` is treated as 1).
    pub micro_batch: usize,
}

impl Default for GpnTrainConfig {
    fn default() -> Self {
        Self {
            batch: 16,
            iters_lower: 60,
            iters_upper: 60,
            lr: 1e-3,
            length_penalty: 1.0,
            threads: 0,
            micro_batch: 8,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean reward of the last lower-stage batch.
    pub final_lower_reward: f64,
    /// Mean reward of the last upper-stage batch.
    pub final_upper_reward: f64,
}

fn reward(p: &TsptwProblem, decode: &Decode, level: RewardLevel, penalty: f64) -> f64 {
    let n = p.nodes.len().max(1) as f64;
    // Every decoded node met its window by construction of the mask.
    let satisfied = decode.order.len() as f64 / n;
    match level {
        RewardLevel::Lower => satisfied,
        RewardLevel::Upper => {
            let horizon = (p.deadline - p.depart).max(1.0);
            let rtt = if decode.complete {
                p.evaluate_order(&decode.order).unwrap_or(horizon * 2.0)
            } else {
                horizon * 2.0
            };
            satisfied - penalty * rtt / horizon
        }
    }
}

/// One sampled decode on a shared group tape: its encode slot (`None` for
/// zero-node problems, which are never encoded), decision log-probs, and
/// realized reward.
struct Rollout {
    slot: Option<usize>,
    logps: Vec<Var>,
    reward: f64,
}

/// Trains `policy` hierarchically on instances drawn from `generator`.
///
/// Stage 1 maximizes the lower reward; stage 2 continues from the learned
/// weights and maximizes the upper reward. REINFORCE with a batch-mean
/// baseline.
///
/// Batch episodes are packed into groups of [`GpnTrainConfig::micro_batch`]
/// sharing one recycled tape and one batched encoder pass; groups fan out
/// over [`GpnTrainConfig::threads`] workers, each episode with an RNG
/// seeded from its schedule position; per-episode gradients merge into the
/// store in episode order, so the result is bit-identical for every thread
/// count and micro-batch size. Problems themselves are drawn sequentially
/// from the training RNG (the generator is stateful), which also keeps the
/// instance sequence thread-independent.
pub fn train_gpn(
    policy: &mut GpnPolicy,
    generator: &mut dyn FnMut(&mut SmallRng) -> TsptwProblem,
    cfg: &GpnTrainConfig,
    seed: u64,
) -> TrainReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adam = Adam::new(cfg.lr);
    let mut report = TrainReport::default();
    let pool = TapePool::new();

    for (stage, (level, iters)) in
        [(RewardLevel::Lower, cfg.iters_lower), (RewardLevel::Upper, cfg.iters_upper)]
            .into_iter()
            .enumerate()
    {
        for iter in 0..iters {
            let problems: Vec<TsptwProblem> = (0..cfg.batch).map(|_| generator(&mut rng)).collect();
            let stream = ((stage as u64 + 1) << 48) | iter as u64;
            let policy_ref: &GpnPolicy = policy;
            let micro = cfg.micro_batch.max(1);
            let groups: Vec<(u64, &[TsptwProblem])> =
                problems.chunks(micro).enumerate().map(|(g, c)| ((g * micro) as u64, c)).collect();
            // Phase 1: each group shares one tape and one batched encoder
            // pass, then decodes each member under its own tape scope.
            let rollouts: Vec<(Tape, Vec<Rollout>)> =
                parallel_map(cfg.threads, &groups, |_, (start, members)| {
                    let mut tape = pool.take();
                    let encodable: Vec<usize> = members
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| !p.nodes.is_empty())
                        .map(|(i, _)| i)
                        .collect();
                    let encs = if encodable.is_empty() {
                        Vec::new()
                    } else {
                        let ps: Vec<&TsptwProblem> =
                            encodable.iter().map(|&i| &members[i]).collect();
                        policy_ref.encode_batch(&mut tape, &ps)
                    };
                    let mut slot_of: Vec<Option<usize>> = vec![None; members.len()];
                    for (s, &i) in encodable.iter().enumerate() {
                        slot_of[i] = Some(s);
                    }
                    let eps: Vec<Rollout> = members
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            let mut ep_rng = SmallRng::seed_from_u64(episode_seed(
                                seed,
                                stream,
                                start + i as u64,
                            ));
                            let decode = match slot_of[i] {
                                Some(s) => {
                                    tape.set_scope(s as u32);
                                    policy_ref.decode_with(
                                        &mut tape,
                                        p,
                                        &encs[s],
                                        Some(&mut ep_rng),
                                    )
                                }
                                None => Decode { order: vec![], logps: vec![], complete: true },
                            };
                            let r = reward(p, &decode, level, cfg.length_penalty);
                            Rollout { slot: slot_of[i], logps: decode.logps, reward: r }
                        })
                        .collect();
                    tape.set_scope(0);
                    (tape, eps)
                });

            let baseline =
                rollouts.iter().flat_map(|(_, eps)| eps.iter().map(|r| r.reward)).sum::<f64>()
                    / cfg.batch.max(1) as f64;
            match level {
                RewardLevel::Lower => report.final_lower_reward = baseline,
                RewardLevel::Upper => report.final_upper_reward = baseline,
            }

            // Phase 2: loss = −Σ (R − b)·Σ log π per episode, summed per
            // group into one backward; the segmented tape splits the
            // gradients back per episode.
            let batch_f = cfg.batch.max(1) as f32;
            let grads: Vec<Vec<Option<GradBatch>>> =
                parallel_map_owned(cfg.threads, rollouts, |_, (mut tape, eps)| {
                    let mut out: Vec<Option<GradBatch>> = eps.iter().map(|_| None).collect();
                    let mut losses = Vec::new();
                    let mut ready: Vec<(usize, usize)> = Vec::new();
                    let mut slots = 0usize;
                    for (i, r) in eps.iter().enumerate() {
                        if let Some(s) = r.slot {
                            slots = slots.max(s + 1);
                        }
                        let adv = (r.reward - baseline) as f32;
                        // smore-lint: allow(N1): deliberate exact-zero test —
                        // it only skips the no-op gradient; any nonzero
                        // advantage, however tiny, must still flow through
                        // backward().
                        if adv == 0.0 || r.logps.is_empty() {
                            continue;
                        }
                        let Some(s) = r.slot else { continue };
                        let summed = if r.logps.len() == 1 {
                            r.logps[0]
                        } else {
                            let cat = tape.concat_cols(&r.logps);
                            tape.sum_all(cat)
                        };
                        losses.push(tape.scale(summed, -adv / batch_f));
                        ready.push((i, s));
                    }
                    if !losses.is_empty() {
                        let cat = tape.concat_cols(&losses);
                        let total = tape.sum_all(cat);
                        tape.backward(total);
                        let mut batches: Vec<GradBatch> =
                            (0..slots).map(|_| GradBatch::new()).collect();
                        tape.scatter_grads_into_batches(&mut batches);
                        for (i, s) in ready {
                            out[i] = Some(std::mem::replace(&mut batches[s], GradBatch::new()));
                        }
                    }
                    pool.put(tape);
                    out
                });

            let mut stepped = false;
            for g in grads.into_iter().flatten().flatten() {
                g.merge_into(&mut policy.store);
                stepped = true;
            }
            if stepped {
                adam.step(&mut policy.store);
            }
        }
    }
    report
}

/// Inference wrapper: greedy decode, verified end-to-end.
#[derive(Debug, Clone)]
pub struct GpnSolver {
    policy: GpnPolicy,
}

impl GpnSolver {
    /// Wraps a (typically trained) policy for inference.
    pub fn new(policy: GpnPolicy) -> Self {
        Self { policy }
    }

    /// Access to the underlying policy (e.g. for serialization).
    pub fn policy(&self) -> &GpnPolicy {
        &self.policy
    }
}

impl TsptwSolver for GpnSolver {
    fn name(&self) -> &str {
        "gpn-rl"
    }

    fn solve(&self, p: &TsptwProblem) -> Result<TsptwSolution, SolveError> {
        let mut tape = Tape::new();
        let decode = self.policy.decode(&mut tape, p, None);
        if !decode.complete {
            return Err(SolveError::Infeasible);
        }
        // A complete decode can still violate a window or the deadline when
        // re-simulated; report that as infeasible (the RL "false alarm" the
        // hybrid solver repairs), never as a solution.
        let rtt = p.evaluate_order(&decode.order).ok_or(SolveError::Infeasible)?;
        Ok(TsptwSolution { order: decode.order, rtt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_worker_problem;

    #[test]
    fn untrained_policy_decodes_valid_permutations() {
        let policy = GpnPolicy::new(GpnConfig::default(), 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = random_worker_problem(&mut rng, 6, 0.5);
        let mut tape = Tape::new();
        let d = policy.decode(&mut tape, &p, None);
        if d.complete {
            let mut sorted = d.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        }
        let _ = rng;
    }

    #[test]
    fn training_improves_upper_reward() {
        let mut policy =
            GpnPolicy::new(GpnConfig { d_model: 16, heads: 2, enc_layers: 1, clip: 10.0 }, 3);
        let mut gen = |rng: &mut SmallRng| random_worker_problem(rng, 5, 0.4);

        // Baseline reward before training (greedy decode over fixed eval set).
        let eval = |policy: &GpnPolicy| {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut total = 0.0;
            for _ in 0..20 {
                let p = random_worker_problem(&mut rng, 5, 0.4);
                let mut tape = Tape::new();
                let d = policy.decode(&mut tape, &p, None);
                total += reward(&p, &d, RewardLevel::Upper, 1.0);
            }
            total / 20.0
        };
        let before = eval(&policy);
        let cfg = GpnTrainConfig {
            batch: 8,
            iters_lower: 25,
            iters_upper: 25,
            lr: 2e-3,
            length_penalty: 1.0,
            threads: 2,
            micro_batch: 4,
        };
        let report = train_gpn(&mut policy, &mut gen, &cfg, 7);
        let after = eval(&policy);
        assert!(
            after >= before - 0.05,
            "training must not collapse the policy: before {before:.3}, after {after:.3}, report {report:?}"
        );
        assert!(report.final_lower_reward > 0.5, "lower stage should satisfy most windows");
    }

    #[test]
    fn gpn_training_is_bit_identical_across_thread_counts_and_micro_batches() {
        let run = |threads: usize, micro_batch: usize| {
            let mut policy =
                GpnPolicy::new(GpnConfig { d_model: 16, heads: 2, enc_layers: 1, clip: 10.0 }, 13);
            let mut gen = |rng: &mut SmallRng| random_worker_problem(rng, 5, 0.4);
            let cfg = GpnTrainConfig {
                batch: 4,
                iters_lower: 3,
                iters_upper: 3,
                lr: 2e-3,
                length_penalty: 1.0,
                threads,
                micro_batch,
            };
            train_gpn(&mut policy, &mut gen, &cfg, 17);
            policy
                .store
                .iter()
                .map(|(_, _, m)| m.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>())
                .collect::<Vec<_>>()
        };
        let sequential = run(1, 1);
        for threads in [2, 8] {
            for micro_batch in [1, 3, 8] {
                assert_eq!(
                    sequential,
                    run(threads, micro_batch),
                    "diverged at {threads} threads, micro_batch {micro_batch}"
                );
            }
        }
    }

    #[test]
    fn policy_roundtrips_through_json() {
        let cfg = GpnConfig { d_model: 16, heads: 2, enc_layers: 1, clip: 10.0 };
        let policy = GpnPolicy::new(cfg.clone(), 11);
        let restored = GpnPolicy::from_json(cfg, &policy.to_json()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let p = random_worker_problem(&mut rng, 5, 0.5);
        let a = GpnSolver::new(policy).solve(&p);
        let b = GpnSolver::new(restored).solve(&p);
        assert_eq!(a, b, "restored policy must reproduce decisions");
    }

    #[test]
    fn solver_reports_infeasibility_as_error() {
        let policy = GpnPolicy::new(GpnConfig::default(), 5);
        let solver = GpnSolver::new(policy);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut p = random_worker_problem(&mut rng, 4, 0.5);
        p.deadline = p.depart + 0.01; // impossible
        assert_eq!(solver.solve(&p), Err(SolveError::Infeasible));
    }
}
