//! Random TSPTW instance generation for training and testing the RL solver.
//!
//! Instances mimic the structure of SMORE's worker route-planning problems:
//! a mixture of "travel-task" nodes (windows spanning the whole trip) and
//! "sensing-task" nodes (short slot windows), with a distinct origin and
//! destination inside a city-block-scale region.

use crate::problem::{TsptwNode, TsptwProblem};
use rand::rngs::SmallRng;
use rand::Rng;
use smore_geo::{Point, TimeWindow, TravelTimeModel};

/// Generates a worker-route-shaped TSPTW instance with `n` nodes, of which
/// roughly `sensing_fraction` carry short slot windows.
pub fn random_worker_problem(rng: &mut SmallRng, n: usize, sensing_fraction: f64) -> TsptwProblem {
    let region = 1200.0;
    let horizon = 240.0;
    let speed = 60.0;
    let start = Point::new(rng.gen_range(0.0..region), rng.gen_range(0.0..region));
    let end = Point::new(rng.gen_range(0.0..region), rng.gen_range(0.0..region));

    let nodes = (0..n)
        .map(|_| {
            let loc = Point::new(rng.gen_range(0.0..region), rng.gen_range(0.0..region));
            if rng.gen_bool(sensing_fraction) {
                // Sensing task: a 30–60-minute slot somewhere in the horizon.
                let len = rng.gen_range(30.0..60.0);
                let s = rng.gen_range(0.0..horizon - len);
                TsptwNode {
                    loc,
                    window: TimeWindow::new(s, s + len),
                    service: rng.gen_range(2.0..6.0),
                }
            } else {
                // Travel task: the worker's whole time range.
                TsptwNode { loc, window: TimeWindow::new(0.0, horizon), service: 10.0 }
            }
        })
        .collect();

    TsptwProblem {
        start,
        end,
        depart: 0.0,
        deadline: horizon,
        nodes,
        travel: TravelTimeModel::new(speed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_problems_are_well_formed() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let p = random_worker_problem(&mut rng, 8, 0.5);
            assert_eq!(p.len(), 8);
            for n in &p.nodes {
                assert!(n.window.start >= 0.0 && n.window.end <= 240.0 + 1e-9);
                assert!(n.window.length() >= n.service);
            }
        }
    }

    #[test]
    fn most_generated_problems_are_feasible() {
        use crate::exact::ExactDpSolver;
        use crate::problem::TsptwSolver;
        let mut rng = SmallRng::seed_from_u64(6);
        let solver = ExactDpSolver::new();
        let feasible = (0..30)
            .filter(|_| solver.solve(&random_worker_problem(&mut rng, 6, 0.5)).is_ok())
            .count();
        assert!(feasible >= 15, "only {feasible}/30 feasible — generator too hard");
    }
}
