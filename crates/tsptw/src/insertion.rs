//! Cheapest-feasible-insertion construction with or-opt improvement.
//!
//! This is the workhorse heuristic: SMORE calls the TSPTW solver
//! `O(|W|·|S|²)` times, so per-call cost matters more than the last percent
//! of optimality. Construction inserts nodes (most urgent window first) at
//! the position minimizing the resulting route travel time; improvement
//! relocates single nodes (or-opt-1) until no improving feasible move
//! remains. Several insertion orders are attempted before declaring
//! infeasibility.

use crate::error::SolveError;
use crate::problem::{TsptwProblem, TsptwSolution, TsptwSolver};
use crate::slack::ScheduleSlack;
use smore_geo::float::{approx_le, definitely_lt};

/// Cheapest-insertion + or-opt TSPTW heuristic.
#[derive(Debug, Clone)]
pub struct InsertionSolver {
    /// Whether to run the or-opt improvement pass after construction.
    pub improve: bool,
}

impl Default for InsertionSolver {
    fn default() -> Self {
        Self { improve: true }
    }
}

impl InsertionSolver {
    /// Creates the solver with improvement enabled.
    pub fn new() -> Self {
        Self::default()
    }

    fn construct(&self, p: &TsptwProblem, insertion_order: &[usize]) -> Option<Vec<usize>> {
        let mut route: Vec<usize> = Vec::with_capacity(p.nodes.len());
        // One slack rebuild per accepted insertion keeps the whole
        // construction at O(n²) instead of the O(n³) of re-simulating every
        // probe position from scratch.
        let mut slack = ScheduleSlack::from_problem(p, &route)?;
        for &node in insertion_order {
            let (pos, _) = slack.best_insertion(&p.nodes[node])?;
            route.insert(pos, node);
            // An accepted insertion stays feasible by the slack invariant,
            // but rebuilding through `?` keeps construction panic-free even
            // if the two feasibility checks ever disagree at an epsilon.
            slack = ScheduleSlack::from_problem(p, &route)?;
        }
        Some(route)
    }

    /// Most-constrained-first construction: repeatedly insert the remaining
    /// node with the *fewest* feasible insertion positions (ties broken by
    /// the cheaper resulting rtt, then by index for determinism). Fixed
    /// insertion orders lose tight instances where an early flexible node
    /// blocks the only slot a tight-window node could take; committing the
    /// least-flexible node first sidesteps exactly that failure mode.
    fn construct_most_constrained(&self, p: &TsptwProblem) -> Option<Vec<usize>> {
        let n = p.nodes.len();
        let mut route: Vec<usize> = Vec::with_capacity(n);
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut slack = ScheduleSlack::from_problem(p, &route)?;
        while !remaining.is_empty() {
            let mut best: Option<(usize, usize, usize, f64)> = None; // (k, pos, options, rtt)
            for (k, &node) in remaining.iter().enumerate() {
                let mut options = 0usize;
                let mut best_pos = 0usize;
                let mut best_rtt = f64::INFINITY;
                for pos in 0..=route.len() {
                    if let Some(rtt) = slack.insertion_at(&p.nodes[node], pos) {
                        options += 1;
                        if rtt < best_rtt {
                            best_rtt = rtt;
                            best_pos = pos;
                        }
                    }
                }
                if options == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, _, o, r)) => options < o || (options == o && best_rtt < r),
                };
                if better {
                    best = Some((k, best_pos, options, best_rtt));
                }
            }
            let (k, pos, _, _) = best?;
            let node = remaining.remove(k);
            route.insert(pos, node);
            slack = ScheduleSlack::from_problem(p, &route)?;
        }
        Some(route)
    }

    fn or_opt(&self, p: &TsptwProblem, route: &mut Vec<usize>) -> f64 {
        let mut best_rtt = p
            .evaluate_order(route)
            // smore-lint: allow(E1): `solve` only calls or_opt with a route
            // `construct` just evaluated; an infeasible input is a logic bug.
            .expect("or_opt must start from a feasible route");
        let mut removed: Vec<usize> = Vec::with_capacity(route.len());
        let mut improved = true;
        while improved {
            improved = false;
            'moves: for from in 0..route.len() {
                let node = route[from];
                removed.clear();
                removed.extend(route.iter().copied());
                removed.remove(from);
                // Relocation = insertion into the route minus the node;
                // `to` indexes positions in the reduced route directly.
                let Some(slack) = ScheduleSlack::from_nodes(
                    p.start,
                    p.end,
                    p.depart,
                    p.deadline,
                    p.travel,
                    removed.iter().map(|&i| p.nodes[i]).collect(),
                ) else {
                    continue;
                };
                for to in 0..route.len() {
                    if to == from {
                        continue;
                    }
                    if let Some(rtt) = slack.insertion_at(&p.nodes[node], to) {
                        if definitely_lt(rtt, best_rtt, 1e-9) {
                            route.clear();
                            route.extend(removed.iter().copied());
                            route.insert(to, node);
                            best_rtt = rtt;
                            improved = true;
                            continue 'moves;
                        }
                    }
                }
            }
        }
        // Re-derive the final value with the reference simulator so callers
        // see evaluate_order's exact arithmetic, free of any accumulated
        // floating-point drift from chained O(1) deltas.
        // smore-lint: allow(E1): every accepted or_opt move re-validated via
        // insertion_at, so the final route is feasible by construction.
        p.evaluate_order(route).expect("or_opt preserves feasibility")
    }
}

impl TsptwSolver for InsertionSolver {
    fn name(&self) -> &str {
        "insertion"
    }

    fn solve(&self, p: &TsptwProblem) -> Result<TsptwSolution, SolveError> {
        let n = p.nodes.len();
        if n == 0 {
            let rtt = p.travel.travel_time(&p.start, &p.end);
            return if approx_le(p.depart + rtt, p.deadline, 1e-6) {
                Ok(TsptwSolution { order: vec![], rtt })
            } else {
                Err(SolveError::Infeasible)
            };
        }

        // Candidate insertion orders: urgency (window end), window start,
        // distance from the route start.
        let mut by_end: Vec<usize> = (0..n).collect();
        by_end.sort_by(|&a, &b| p.nodes[a].window.end.total_cmp(&p.nodes[b].window.end));
        let mut by_start: Vec<usize> = (0..n).collect();
        by_start.sort_by(|&a, &b| p.nodes[a].window.start.total_cmp(&p.nodes[b].window.start));
        let mut by_dist: Vec<usize> = (0..n).collect();
        by_dist.sort_by(|&a, &b| {
            p.start.distance_sq(&p.nodes[a].loc).total_cmp(&p.start.distance_sq(&p.nodes[b].loc))
        });

        let mut best: Option<Vec<usize>> = None;
        let mut best_rtt = f64::INFINITY;
        let candidates = [&by_end, &by_start, &by_dist]
            .into_iter()
            .filter_map(|order| self.construct(p, order))
            .chain(self.construct_most_constrained(p));
        for route in candidates {
            // A constructed route is feasible, but degrade to the next
            // candidate instead of panicking if evaluation and slack ever
            // disagree at an epsilon.
            let Some(rtt) = p.evaluate_order(&route) else { continue };
            if rtt < best_rtt {
                best_rtt = rtt;
                best = Some(route);
            }
        }
        let mut route = best.ok_or(SolveError::Infeasible)?;
        if self.improve {
            best_rtt = self.or_opt(p, &mut route);
        }
        Ok(TsptwSolution { order: route, rtt: best_rtt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactDpSolver;
    use crate::problem::TsptwNode;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use smore_geo::{Point, TimeWindow, TravelTimeModel};

    fn random_problem(rng: &mut SmallRng, n: usize) -> TsptwProblem {
        let nodes = (0..n)
            .map(|_| {
                let start = rng.gen_range(0.0..150.0);
                TsptwNode {
                    loc: Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                    window: TimeWindow::new(start, start + rng.gen_range(60.0..400.0)),
                    service: rng.gen_range(0.0..8.0),
                }
            })
            .collect();
        TsptwProblem {
            start: Point::new(0.0, 0.0),
            end: Point::new(100.0, 100.0),
            depart: 0.0,
            deadline: 900.0,
            nodes,
            travel: TravelTimeModel::new(1.0),
        }
    }

    #[test]
    fn agrees_with_exact_on_feasibility_most_of_the_time() {
        let mut rng = SmallRng::seed_from_u64(31);
        let exact = ExactDpSolver::new();
        let ins = InsertionSolver::new();
        let mut solved = 0;
        let mut exact_feasible = 0;
        let mut gap_sum = 0.0;
        for _ in 0..40 {
            let p = random_problem(&mut rng, 7);
            let e = exact.solve(&p);
            let h = ins.solve(&p);
            if let Ok(e) = &e {
                exact_feasible += 1;
                if let Ok(h) = &h {
                    solved += 1;
                    assert!(h.rtt + 1e-6 >= e.rtt, "heuristic cannot beat the optimum");
                    gap_sum += (h.rtt - e.rtt) / e.rtt;
                }
            } else {
                // Heuristic must never claim feasibility on infeasible input:
                // every returned order is verified by evaluate_order.
                if let Ok(h) = &h {
                    panic!("heuristic produced order {:?} on an infeasible instance", h.order);
                }
            }
        }
        // The heuristic should solve the vast majority of feasible instances
        // with a small optimality gap.
        assert!(exact_feasible > 10, "test generator produced too few feasible instances");
        assert!(solved * 10 >= exact_feasible * 9, "{solved}/{exact_feasible} solved");
        assert!(gap_sum / solved as f64 <= 0.05, "mean gap too large");
    }

    #[test]
    fn visits_every_node_exactly_once() {
        let mut rng = SmallRng::seed_from_u64(32);
        let ins = InsertionSolver::new();
        for _ in 0..10 {
            let p = random_problem(&mut rng, 12);
            if let Ok(s) = ins.solve(&p) {
                let mut sorted = s.order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..12).collect::<Vec<_>>());
                assert!((p.evaluate_order(&s.order).unwrap() - s.rtt).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn improvement_never_hurts() {
        let mut rng = SmallRng::seed_from_u64(33);
        let with = InsertionSolver { improve: true };
        let without = InsertionSolver { improve: false };
        for _ in 0..15 {
            let p = random_problem(&mut rng, 9);
            if let (Ok(a), Ok(b)) = (with.solve(&p), without.solve(&p)) {
                assert!(a.rtt <= b.rtt + 1e-9);
            }
        }
    }

    #[test]
    fn empty_problem() {
        let p = TsptwProblem {
            start: Point::new(0.0, 0.0),
            end: Point::new(60.0, 0.0),
            depart: 0.0,
            deadline: 2.0,
            nodes: vec![],
            travel: TravelTimeModel::PAPER_DEFAULT,
        };
        let s = InsertionSolver::new().solve(&p).unwrap();
        assert!((s.rtt - 1.0).abs() < 1e-9);
    }
}
