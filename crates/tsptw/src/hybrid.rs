//! The production solver used inside SMORE: RL decode with heuristic repair.
//!
//! The paper acknowledges that the pre-trained RL solver can raise "false
//! alarms" — declaring a feasible instance infeasible (Section VII). The
//! hybrid solver counters this: when the primary (RL) solver fails or
//! returns a worse route than the heuristic would, the cheapest-insertion
//! solver takes over. Counters expose how often each path won, feeding the
//! false-alarm ablation bench.

use crate::error::SolveError;
use crate::insertion::InsertionSolver;
use crate::problem::{TsptwProblem, TsptwSolution, TsptwSolver};
use std::sync::atomic::{AtomicUsize, Ordering};

/// RL-first solver with heuristic fallback and repair statistics.
pub struct HybridSolver<P> {
    primary: P,
    fallback: InsertionSolver,
    primary_wins: AtomicUsize,
    fallback_rescues: AtomicUsize,
    both_failed: AtomicUsize,
}

impl<P: TsptwSolver> HybridSolver<P> {
    /// Wraps `primary` with an insertion-solver fallback.
    pub fn new(primary: P) -> Self {
        Self {
            primary,
            fallback: InsertionSolver::new(),
            primary_wins: AtomicUsize::new(0),
            fallback_rescues: AtomicUsize::new(0),
            both_failed: AtomicUsize::new(0),
        }
    }

    /// `(primary wins, fallback rescues, both failed)` since construction.
    pub fn stats(&self) -> (usize, usize, usize) {
        (
            self.primary_wins.load(Ordering::Relaxed),
            self.fallback_rescues.load(Ordering::Relaxed),
            self.both_failed.load(Ordering::Relaxed),
        )
    }

    /// Fraction of calls where the primary failed but the fallback found a
    /// feasible route — the RL solver's observed false-alarm rate.
    pub fn false_alarm_rate(&self) -> f64 {
        let (wins, rescues, failed) = self.stats();
        let total = wins + rescues + failed;
        if total == 0 {
            0.0
        } else {
            rescues as f64 / total as f64
        }
    }
}

impl<P: TsptwSolver> TsptwSolver for HybridSolver<P> {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn solve(&self, p: &TsptwProblem) -> Result<TsptwSolution, SolveError> {
        let primary = self.primary.solve(p);
        match primary {
            Ok(sol) => {
                // Keep the better of the two when the fallback also solves it
                // cheaply; the RL route is kept on ties.
                if let Ok(fb) = self.fallback.solve(p) {
                    if fb.rtt + 1e-9 < sol.rtt {
                        self.fallback_rescues.fetch_add(1, Ordering::Relaxed);
                        return Ok(fb);
                    }
                }
                self.primary_wins.fetch_add(1, Ordering::Relaxed);
                Ok(sol)
            }
            Err(_) => match self.fallback.solve(p) {
                Ok(fb) => {
                    self.fallback_rescues.fetch_add(1, Ordering::Relaxed);
                    Ok(fb)
                }
                Err(e) => {
                    self.both_failed.fetch_add(1, Ordering::Relaxed);
                    // Report the fallback's verdict: the insertion solver's
                    // infeasibility call is more trustworthy than the RL
                    // primary's, and timeouts/faults pass through unchanged.
                    Err(e)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_worker_problem;
    use rand::{rngs::SmallRng, SeedableRng};

    /// A primary solver that always fails — the hybrid must rescue every
    /// feasible instance.
    struct AlwaysFails;
    impl TsptwSolver for AlwaysFails {
        fn name(&self) -> &str {
            "never"
        }
        fn solve(&self, _p: &TsptwProblem) -> Result<TsptwSolution, SolveError> {
            Err(SolveError::Internal("always fails".into()))
        }
    }

    #[test]
    fn fallback_rescues_failed_primary() {
        let hybrid = HybridSolver::new(AlwaysFails);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut rescued = 0;
        for _ in 0..10 {
            let p = random_worker_problem(&mut rng, 5, 0.4);
            if hybrid.solve(&p).is_ok() {
                rescued += 1;
            }
        }
        let (wins, rescues, _) = hybrid.stats();
        assert_eq!(wins, 0);
        assert_eq!(rescues, rescued);
        assert!(hybrid.false_alarm_rate() > 0.0);
    }

    #[test]
    fn hybrid_never_returns_unverified_routes() {
        let hybrid = HybridSolver::new(AlwaysFails);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            let p = random_worker_problem(&mut rng, 6, 0.5);
            if let Ok(s) = hybrid.solve(&p) {
                assert!((p.evaluate_order(&s.order).unwrap() - s.rtt).abs() < 1e-9);
            }
        }
    }
}
