//! Concurrency properties of the serving stack, tested over real TCP with
//! plain `std::thread` interleavings (no loom):
//!
//! * M client threads issuing interleaved `/v1/feasible` probes against a
//!   shared server get bit-identical answers to the same probes issued
//!   sequentially by one client.
//! * Checkpoint hot-swaps (`ModelRegistry` installs and, where the JSON
//!   layer is functional, `POST /admin/reload`) during a sustained load run
//!   cause **zero** failed requests.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use smore::{Critic, Tasnet, TasnetConfig};
use smore_serve::{start, LoadedModel, ModelRegistry, ServeConfig};

fn boot(threads: usize, registry: Arc<ModelRegistry>) -> smore_serve::ServerHandle {
    let config = ServeConfig { threads, queue_capacity: 256, ..ServeConfig::default() };
    start(config, registry).expect("bind")
}

/// One request/response round trip. The server keeps connections alive, so
/// the reply is read by `Content-Length` framing rather than EOF.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(60))).expect("timeout");
    stream.write_all(raw).expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let reply = loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("unframed reply: {head:?}"));
            if buf.len() >= head_end + 4 + content_length {
                break String::from_utf8_lossy(&buf[..head_end + 4 + content_length]).to_string();
            }
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "EOF mid-response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unframed reply: {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn probe_request(worker: usize, task: usize) -> String {
    format!(
        "POST /v1/feasible?dataset=delivery&gen_seed=5&worker={worker}&task={task} HTTP/1.1\r\nHost: t\r\n\r\n"
    )
}

#[test]
fn interleaved_probes_match_sequential_bit_for_bit() {
    let server = boot(4, Arc::new(ModelRegistry::new()));
    let addr = server.addr();

    // The probe set: a grid of (worker, task) pairs, each probed by two
    // different client threads to force interleaving on shared sessions.
    let pairs: Vec<(usize, usize)> = (0..4).flat_map(|w| (0..6).map(move |t| (w, t))).collect();

    // Sequential reference.
    let mut reference = BTreeMap::new();
    for &(w, t) in &pairs {
        let (status, body) = roundtrip(addr, probe_request(w, t).as_bytes());
        assert_eq!(status, 200, "probe ({w},{t})");
        reference.insert((w, t), body);
    }

    // 8 threads × interleaved order, every pair probed twice.
    let reference = Arc::new(reference);
    let handles: Vec<_> = (0..8)
        .map(|shift| {
            let pairs = pairs.clone();
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for i in 0..pairs.len() {
                    let (w, t) = pairs[(i + shift * 3) % pairs.len()];
                    let (status, body) = roundtrip(addr, probe_request(w, t).as_bytes());
                    assert_eq!(status, 200, "probe ({w},{t}) on thread {shift}");
                    assert_eq!(
                        &body,
                        reference.get(&(w, t)).expect("reference"),
                        "probe ({w},{t}) on thread {shift} diverged from sequential"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    server.stop();
    server.join();
}

fn tiny_model(seed: u64) -> LoadedModel {
    // Grid shape matches delivery/small (probed lazily from a generated
    // instance so the test cannot drift from the dataset presets).
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
    let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 5);
    let inst = g.gen_default(&mut SmallRng::seed_from_u64(5));
    let mut cfg = TasnetConfig::for_grid(inst.lattice.grid.rows, inst.lattice.grid.cols);
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.enc_layers = 1;
    LoadedModel { net: Tasnet::new(cfg, seed), critic: Critic::new(16, seed + 1) }
}

fn serde_is_functional() -> bool {
    serde_json::from_str::<u64>("1").is_ok()
}

#[test]
fn checkpoint_reloads_under_load_fail_zero_requests() {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(tiny_model(5));
    let server = boot(2, Arc::clone(&registry));
    let addr = server.addr();

    // Client threads hammer solve + feasible while reloads happen.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut failures = Vec::new();
                for i in 0..12 {
                    let raw = if (c + i) % 2 == 0 {
                        format!(
                            "POST /v1/solve?dataset=delivery&gen_seed=5&method={} HTTP/1.1\r\n\r\n",
                            if c % 2 == 0 { "smore" } else { "greedy" }
                        )
                    } else {
                        probe_request(c % 4, i % 6)
                    };
                    let (status, body) = roundtrip(addr, raw.as_bytes());
                    if status != 200 {
                        failures.push(format!("client {c} iter {i}: {status} {body}"));
                    }
                }
                failures
            })
        })
        .collect();

    // Meanwhile: hot-swap checkpoints, both in-process and over the wire.
    let mut reloads = 0u64;
    for round in 0..10u64 {
        registry.install(tiny_model(100 + round));
        reloads += 1;
        if serde_is_functional() {
            let model = tiny_model(200 + round);
            let ckpt = smore_model::ModelCheckpoint {
                grid_rows: model.net.cfg.grid_rows,
                grid_cols: model.net.cfg.grid_cols,
                d_model: 16,
                heads: 2,
                enc_layers: 1,
                policy: model.net.store.to_json(),
                critic: model.critic.store.to_json(),
                checksum: None,
                progress: None,
            };
            let body = serde_json::to_string(&ckpt).expect("checkpoint json");
            let raw = format!(
                "POST /admin/reload HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            let (status, reply) = roundtrip(addr, raw.as_bytes());
            assert_eq!(status, 200, "reload round {round}: {reply}");
            reloads += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let failures: Vec<String> =
        clients.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    assert!(failures.is_empty(), "requests failed during reloads: {failures:?}");
    assert!(registry.version() >= reloads, "every swap must bump the version");

    server.stop();
    server.join();
}
