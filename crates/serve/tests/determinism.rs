//! Serving determinism contract: identical `/v1/solve` request bytes must
//! produce **byte-identical** response bodies — across repeated requests,
//! across server restarts, across thread-pool sizes, and across
//! micro-batch placement (a request answered as one row of a coalesced
//! batch must match the same request answered alone).
//!
//! Responses contain no timestamps or host-dependent fields, handlers are
//! pure in (request bytes, loaded checkpoint), model forwards always go
//! through the batch path (a singleton is a batch of one), and each worker
//! thread's `SolveSession` re-arms its evaluator between requests, so this
//! holds by construction; the tests pin it down over real TCP.
//!
//! `/v1/events` extends the contract to stateful sessions: identical
//! seeded event streams must replay to byte-identical responses (and
//! final checksums) across pool sizes and batch bounds.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use smore::{Critic, Tasnet, TasnetConfig};
use smore_serve::{start, LoadedModel, ModelRegistry, ServeConfig};

fn boot(threads: usize, registry: Arc<ModelRegistry>) -> smore_serve::ServerHandle {
    let config = ServeConfig { threads, ..ServeConfig::default() };
    start(config, registry).expect("bind")
}

/// Boots with explicit batching knobs (the batch-placement test sweeps
/// them).
fn boot_batched(
    threads: usize,
    max_batch: usize,
    max_delay_us: u64,
    registry: Arc<ModelRegistry>,
) -> smore_serve::ServerHandle {
    let config = ServeConfig { threads, max_batch, max_delay_us, ..ServeConfig::default() };
    start(config, registry).expect("bind")
}

/// One request/response round trip, reading the reply by `Content-Length`
/// framing (connections stay alive, so EOF never comes).
fn body_of(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    stream.write_all(raw.as_bytes()).expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let reply = loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("unframed reply: {head:?}"));
            if buf.len() >= head_end + 4 + content_length {
                break String::from_utf8_lossy(&buf[..head_end + 4 + content_length]).to_string();
            }
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "EOF mid-response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let (head, body) = reply.split_once("\r\n\r\n").expect("framed response");
    (head.to_string(), body.to_string())
}

/// A deterministic tiny checkpoint sized for the delivery/small grid.
fn tiny_model_for(rows: usize, cols: usize) -> LoadedModel {
    let mut cfg = TasnetConfig::for_grid(rows, cols);
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.enc_layers = 1;
    LoadedModel { net: Tasnet::new(cfg, 5), critic: Critic::new(16, 6) }
}

fn grid_of_delivery_small() -> (usize, usize) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
    let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 11);
    let inst = g.gen_default(&mut SmallRng::seed_from_u64(11));
    (inst.lattice.grid.rows, inst.lattice.grid.cols)
}

const REQUESTS: [&str; 4] = [
    "POST /v1/solve?dataset=delivery&gen_seed=11&method=greedy HTTP/1.1\r\nHost: t\r\n\r\n",
    "POST /v1/solve?dataset=delivery&gen_seed=11&method=ratio HTTP/1.1\r\nHost: t\r\n\r\n",
    "POST /v1/solve?dataset=tourism&gen_seed=3&method=random&seed=9 HTTP/1.1\r\nHost: t\r\n\r\n",
    "POST /v1/solve?dataset=delivery&gen_seed=11&method=smore HTTP/1.1\r\nHost: t\r\n\r\n",
];

#[test]
fn identical_requests_are_byte_identical_across_runs_and_pool_sizes() {
    let (rows, cols) = grid_of_delivery_small();

    // Reference bodies from a single-threaded server.
    let registry = Arc::new(ModelRegistry::new());
    registry.install(tiny_model_for(rows, cols));
    let server1 = boot(1, Arc::clone(&registry));
    let reference: Vec<(String, String)> =
        REQUESTS.iter().map(|r| body_of(server1.addr(), r)).collect();
    for ((head, _), raw) in reference.iter().zip(REQUESTS) {
        assert!(head.starts_with("HTTP/1.1 200 OK"), "request {raw:?} → {head}");
    }
    // Same server, repeated: identical.
    for (i, raw) in REQUESTS.iter().enumerate() {
        assert_eq!(body_of(server1.addr(), raw).1, reference[i].1, "rerun of {raw:?}");
    }
    server1.stop();
    server1.join();

    // Fresh server with a 4-thread pool and a freshly built (but
    // identically seeded) checkpoint: still byte-identical.
    let registry4 = Arc::new(ModelRegistry::new());
    registry4.install(tiny_model_for(rows, cols));
    let server4 = boot(4, registry4);
    for (i, raw) in REQUESTS.iter().enumerate() {
        assert_eq!(body_of(server4.addr(), raw).1, reference[i].1, "4-thread pool, {raw:?}");
    }
    server4.stop();
    server4.join();
}

#[test]
fn batched_solves_are_byte_identical_to_sequential_across_batch_and_pool_sizes() {
    let (rows, cols) = grid_of_delivery_small();
    let smore_solve =
        "POST /v1/solve?dataset=delivery&gen_seed=11&method=smore HTTP/1.1\r\nHost: t\r\n\r\n";

    // Sequential reference: batching disabled, one worker.
    let registry = Arc::new(ModelRegistry::new());
    registry.install(tiny_model_for(rows, cols));
    let reference_server = boot_batched(1, 1, 0, Arc::clone(&registry));
    let (head, reference) = body_of(reference_server.addr(), smore_solve);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    reference_server.stop();
    reference_server.join();

    // Sweep batch bound × pool size; a generous flush delay forces
    // concurrent requests to actually coalesce into shared batches.
    for &(threads, max_batch) in &[(1usize, 1usize), (1, 8), (4, 1), (4, 8)] {
        let registry = Arc::new(ModelRegistry::new());
        registry.install(tiny_model_for(rows, cols));
        let server = boot_batched(threads, max_batch, 20_000, Arc::clone(&registry));
        let addr = server.addr();
        let clients: Vec<_> =
            (0..16).map(|_| std::thread::spawn(move || body_of(addr, smore_solve))).collect();
        for (c, handle) in clients.into_iter().enumerate() {
            let (head, body) = handle.join().expect("client thread");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "client {c}: {head}");
            assert_eq!(
                body, reference,
                "threads={threads} max_batch={max_batch} client {c}: \
                 batched response diverged from sequential reference"
            );
        }
        let flushed_full = server.metrics().batch_flushes(smore_serve::FlushReason::Full);
        let flushed_deadline = server.metrics().batch_flushes(smore_serve::FlushReason::Deadline);
        assert!(
            flushed_full + flushed_deadline > 0,
            "threads={threads} max_batch={max_batch}: no batches flushed"
        );
        server.stop();
        server.join();
    }
}

#[test]
fn event_streams_are_byte_identical_across_pool_and_batch_sizes() {
    // The `/v1/events` contract extends byte-identity to stateful
    // sessions: replaying the same seeded envelope sequence must produce
    // identical response bodies (world version, objective, checksum, full
    // route suffixes) no matter how the server is threaded or batched.
    // Envelopes within a session are strictly sequenced by `seq`, so each
    // replay is sequential; the sweep varies only server configuration.
    use smore_datasets::{DatasetKind, EventStreamSpec, Scale};

    let lines = smore_datasets::gen_event_stream(&EventStreamSpec::preset(
        DatasetKind::Delivery,
        Scale::Small,
        11,
    ));
    let post = |addr: SocketAddr, body: &str| {
        let raw = format!(
            "POST /v1/events HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        body_of(addr, &raw)
    };

    // Reference replay on a single-threaded, batching-disabled server.
    let reference_server = boot_batched(1, 1, 0, Arc::new(ModelRegistry::new()));
    let reference: Vec<(String, String)> =
        lines.iter().map(|l| post(reference_server.addr(), l)).collect();
    for (i, (head, _)) in reference.iter().enumerate() {
        assert!(head.starts_with("HTTP/1.1 200 OK"), "envelope {i}: {head}");
    }
    reference_server.stop();
    reference_server.join();

    for &(threads, max_batch) in &[(1usize, 1usize), (1, 8), (4, 1), (4, 8)] {
        let server = boot_batched(threads, max_batch, 0, Arc::new(ModelRegistry::new()));
        for (i, line) in lines.iter().enumerate() {
            let (head, body) = post(server.addr(), line);
            assert!(
                head.starts_with("HTTP/1.1 200 OK"),
                "threads={threads} max_batch={max_batch} envelope {i}: {head}"
            );
            assert_eq!(
                body, reference[i].1,
                "threads={threads} max_batch={max_batch} envelope {i}: \
                 event response diverged from single-threaded reference"
            );
        }
        server.stop();
        server.join();
    }
}

#[test]
fn solve_and_feasible_responses_carry_no_volatile_fields() {
    // Guard the contract at the wire level: the serialized bodies must not
    // mention time-like fields that would break byte-identity.
    let registry = Arc::new(ModelRegistry::new());
    let server = boot(2, registry);
    let (_, solve) = body_of(
        server.addr(),
        "POST /v1/solve?dataset=delivery&gen_seed=2&method=greedy HTTP/1.1\r\n\r\n",
    );
    let (_, feasible) = body_of(
        server.addr(),
        "POST /v1/feasible?dataset=delivery&gen_seed=2&worker=0&task=0 HTTP/1.1\r\n\r\n",
    );
    for body in [&solve, &feasible] {
        for forbidden in ["timestamp", "elapsed", "duration_ms", "now", "hostname"] {
            assert!(!body.contains(forbidden), "volatile field {forbidden:?} in {body}");
        }
    }
    server.stop();
    server.join();
}
