//! Wire fuzzing for `POST /v1/events`: hostile bytes over real TCP must
//! never panic a worker, wedge the event loop, or close a connection
//! without a framed answer. Every malformed envelope — garbage, truncated
//! JSON, random byte mutations, out-of-order sequence numbers, unknown
//! sessions — maps to a structured `Content-Length`-framed 4xx, and the
//! server keeps serving well-formed streams afterwards.
//!
//! Mutations are seeded (splitmix64), so a failure reproduces exactly.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use smore_datasets::{DatasetKind, EventStreamSpec, Scale};
use smore_serve::{start, ModelRegistry, ServeConfig};

fn boot() -> smore_serve::ServerHandle {
    let config = ServeConfig { threads: 2, ..ServeConfig::default() };
    start(config, Arc::new(ModelRegistry::new())).expect("bind")
}

/// Deterministic per-case randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// POSTs `body` to `/v1/events` and reads one framed reply. Returns
/// (status, body). Panics only when the server fails to answer with a
/// framed response at all — that is the invariant under test.
fn post_events(addr: SocketAddr, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let head =
        format!("POST /v1/events HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unframed reply head: {head:?}"));
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("reply without Content-Length: {head:?}"));
            if buf.len() >= head_end + 4 + content_length {
                let body =
                    String::from_utf8_lossy(&buf[head_end + 4..head_end + 4 + content_length])
                        .to_string();
                return (status, body);
            }
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "EOF before framed response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// A short, valid, replayable stream (session-creating envelope + batches).
fn valid_stream(seed: u64, session: &str) -> Vec<String> {
    let mut spec = EventStreamSpec::preset(DatasetKind::Delivery, Scale::Small, seed);
    spec.session = session.to_string();
    spec.batches = 3;
    smore_datasets::gen_event_stream(&spec)
}

/// After any hostility, the server must still replay a fresh well-formed
/// stream with all-200s.
fn assert_still_serving(addr: SocketAddr, session: &str) {
    for (i, line) in valid_stream(23, session).iter().enumerate() {
        let (status, body) = post_events(addr, line.as_bytes());
        assert_eq!(status, 200, "post-fuzz envelope {i} answered {status}: {body}");
    }
}

#[test]
fn garbage_bodies_map_to_structured_400s() {
    let server = boot();
    let mut rng = 0xF00Du64;
    for case in 0..64 {
        let len = (splitmix64(&mut rng) % 257) as usize;
        let body: Vec<u8> = (0..len).map(|_| (splitmix64(&mut rng) & 0xFF) as u8).collect();
        let (status, reply) = post_events(server.addr(), &body);
        assert_eq!(status, 400, "garbage case {case} ({len} bytes) answered {status}: {reply}");
        assert!(reply.contains("\"error\""), "case {case}: unstructured 400 body: {reply}");
    }
    assert_still_serving(server.addr(), "after-garbage");
    server.stop();
    server.join();
}

#[test]
fn truncated_envelopes_map_to_structured_400s() {
    let server = boot();
    let lines = valid_stream(7, "trunc");
    // Truncations of the session-creating envelope at sampled byte
    // positions (never the full length — that one is valid).
    let full = lines[0].as_bytes();
    let mut rng = 0xBEEFu64;
    for case in 0..48 {
        let cut = 1 + (splitmix64(&mut rng) as usize) % (full.len() - 1);
        let (status, reply) = post_events(server.addr(), &full[..cut]);
        assert_eq!(status, 400, "truncation case {case} at {cut} answered {status}: {reply}");
        assert!(reply.contains("\"error\""), "case {case}: unstructured 400 body: {reply}");
    }
    // An empty body is its own 400, not a hang.
    let (status, _) = post_events(server.addr(), b"");
    assert_eq!(status, 400);
    assert_still_serving(server.addr(), "after-trunc");
    server.stop();
    server.join();
}

#[test]
fn mutated_envelopes_never_kill_the_server() {
    let server = boot();
    let lines = valid_stream(11, "mutate");
    // Establish the session, then fire mutated copies of a mid-stream
    // envelope. A mutation may still parse (a digit flip, say) — any
    // framed answer is legal; what is forbidden is a panic, a hang, or an
    // unframed close.
    let (status, _) = post_events(server.addr(), lines[0].as_bytes());
    assert_eq!(status, 200);
    let base = lines[1].as_bytes();
    let mut rng = 0xCAFEu64;
    for case in 0..96 {
        let mut body = base.to_vec();
        let flips = 1 + (splitmix64(&mut rng) % 4) as usize;
        for _ in 0..flips {
            let at = (splitmix64(&mut rng) as usize) % body.len();
            body[at] = (splitmix64(&mut rng) & 0xFF) as u8;
        }
        let (status, reply) = post_events(server.addr(), &body);
        assert!(
            status == 200 || (400..500).contains(&status),
            "mutation case {case} answered {status}: {reply}"
        );
    }
    assert_still_serving(server.addr(), "after-mutate");
    server.stop();
    server.join();
}

#[test]
fn out_of_order_and_unknown_sessions_are_structured_errors() {
    let server = boot();
    let lines = valid_stream(3, "seq");

    // Unknown session: a seq>0 envelope before any seq 0 is a 404.
    let (status, reply) = post_events(server.addr(), lines[1].as_bytes());
    assert_eq!(status, 404, "unknown session answered {status}: {reply}");
    assert!(reply.contains("\"error\""), "unstructured 404 body: {reply}");

    // Create the session, then skip ahead: wrong seq is a 400 that does
    // NOT consume the expected sequence number.
    let (status, _) = post_events(server.addr(), lines[0].as_bytes());
    assert_eq!(status, 200);
    let (status, reply) = post_events(server.addr(), lines[2].as_bytes());
    assert_eq!(status, 400, "skipped seq answered {status}: {reply}");
    let (status, reply) = post_events(server.addr(), lines[1].as_bytes());
    assert_eq!(status, 200, "correct seq after rejected skip answered {status}: {reply}");

    // Replaying an already-consumed seq is also a structured 400.
    let (status, reply) = post_events(server.addr(), lines[1].as_bytes());
    assert_eq!(status, 400, "replayed seq answered {status}: {reply}");
    assert!(reply.contains("\"error\""), "unstructured replay body: {reply}");

    // The stream still completes in order afterwards.
    for (i, line) in lines.iter().enumerate().skip(2) {
        let (status, reply) = post_events(server.addr(), line.as_bytes());
        assert_eq!(status, 200, "envelope {i} answered {status}: {reply}");
    }
    server.stop();
    server.join();
}
