//! Chaos soak: hostile clients plus injected solver faults (spurious
//! failures AND panics) against a live server, over real TCP.
//!
//! The invariants under test are the fault-tolerance layer's contract:
//!
//! * the server process never dies — `/healthz` answers after the storm;
//! * the worker pool never shrinks — every panicked worker is respawned
//!   (`smore_worker_pool_size` ends at the configured size, and panic and
//!   respawn counters match);
//! * every well-formed request gets a framed HTTP response — a panicked
//!   handler is a structured 500, never a hung or torn connection;
//! * a corrupt checkpoint reload is a 4xx and the server keeps serving.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use smore::{Critic, Tasnet, TasnetConfig};
use smore_serve::{start, LoadedModel, ModelRegistry, ServeConfig, ServerHandle};
use smore_tsptw::FaultConfig;

const THREADS: usize = 2;

fn boot_chaotic() -> ServerHandle {
    // Fault rates are per solver *operation*; one solve request makes many,
    // so these small rates still panic a worker every dozen-odd requests.
    let faults = FaultConfig::uniform(0.002).with_panic_rate(0.0005);
    let config = ServeConfig {
        threads: THREADS,
        queue_capacity: 256,
        read_timeout: Duration::from_millis(500),
        faults: Some(faults),
        fault_seed: 11,
        ..ServeConfig::default()
    };
    start(config, Arc::new(ModelRegistry::new())).expect("bind")
}

/// Full request/response over one fresh connection; panics on an unframed
/// reply — exactly the soak invariant for well-formed requests. Replies
/// are read by `Content-Length` framing (connections stay alive, so EOF
/// never comes for healthy responses).
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    stream.write_all(raw).expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let reply = loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("unframed reply: {head:?}"));
            if buf.len() >= head_end + 4 + content_length {
                break String::from_utf8_lossy(&buf[..head_end + 4 + content_length]).to_string();
            }
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "unframed reply (EOF): {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unframed reply: {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn solve_request(i: usize) -> String {
    let method = ["greedy", "ratio", "random"][i % 3];
    format!(
        "POST /v1/solve?dataset=delivery&gen_seed={}&method={method}&seed={i} HTTP/1.1\r\nHost: t\r\n\r\n",
        i % 5
    )
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "/metrics must answer during the soak");
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
}

/// One hostile client action; none of these expect a well-formed answer,
/// they only must not kill or wedge the server.
fn hostile(addr: SocketAddr, kind: usize) {
    let raw = solve_request(kind);
    match kind % 4 {
        // Half a request, then drop mid-line.
        0 => {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(&raw.as_bytes()[..raw.len() / 2]);
        }
        // Slow-loris: dribble a prefix, stall, never finish the head.
        1 => {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(&raw.as_bytes()[..4]);
            std::thread::sleep(Duration::from_millis(20));
            let _ = s.write_all(&raw.as_bytes()[4..8]);
        }
        // Bytes that are not HTTP at all.
        2 => {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(b"\x01\x02 not http at all\r\n\r\n");
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        }
        // Valid request, disconnect before reading the answer.
        _ => {
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(raw.as_bytes());
        }
    }
}

#[test]
fn soak_survives_hostile_clients_and_injected_panics() {
    let server = boot_chaotic();
    let addr = server.addr();

    // Interleave well-formed solves with hostile connections from several
    // client threads. Every well-formed request must come back framed
    // (roundtrip panics otherwise); hostile ones just must not wound the
    // server.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for i in 0..30 {
                    let n = c * 30 + i;
                    if n % 3 == 2 {
                        hostile(addr, n);
                    } else {
                        let (status, _) = roundtrip(addr, solve_request(n).as_bytes());
                        statuses.push(status);
                    }
                }
                statuses
            })
        })
        .collect();
    let mut statuses = Vec::new();
    for c in clients {
        statuses.extend(c.join().expect("client thread"));
    }

    // Every well-formed request was answered with a known status: 200 for
    // survivors, 500 for panic-hit requests, 503 for sheds. Nothing else.
    assert!(!statuses.is_empty());
    for status in &statuses {
        assert!(matches!(status, 200 | 500 | 503), "unexpected status {status} under chaos");
    }

    // The injected panic rate is high enough that a zero-panic run means
    // fault injection silently stopped working.
    let panics = metric(addr, "smore_worker_panics_total");
    let respawns = metric(addr, "smore_worker_respawns_total");
    assert!(panics >= 1, "fault injection produced no panics");
    assert_eq!(panics, respawns, "every panic must trigger exactly one respawn");
    assert_eq!(metric(addr, "smore_worker_pool_size"), THREADS as u64, "pool must never shrink");

    // Corrupt checkpoint reload: a 4xx, never a dropped model or a death.
    let garbage = "{definitely not a checkpoint";
    let reload = format!(
        "POST /admin/reload HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{garbage}",
        garbage.len()
    );
    let (status, _) = roundtrip(addr, reload.as_bytes());
    assert_eq!(status, 400, "corrupt reload must be rejected as client error");

    // The process is still alive and answering.
    let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("ok"), "healthz body: {body}");

    server.stop();
    server.join();
}

/// A deterministic tiny checkpoint sized for the delivery/small grid (same
/// construction as determinism.rs).
fn tiny_delivery_model() -> LoadedModel {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
    let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 11);
    let inst = g.gen_default(&mut SmallRng::seed_from_u64(11));
    let mut cfg = TasnetConfig::for_grid(inst.lattice.grid.rows, inst.lattice.grid.cols);
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.enc_layers = 1;
    LoadedModel { net: Tasnet::new(cfg, 5), critic: Critic::new(16, 6) }
}

#[test]
fn deterministic_batch_forward_panic_converges_to_a_500() {
    // Fault injection is a pure function of (seed, problem), so a panic in
    // the shared batch forward panics identically on retry. The requeued
    // singleton must run through the per-item path — whose catch_unwind
    // answers a structured 500 — instead of re-entering the batch forward
    // and respawn-looping forever with the job pinned at the queue front.
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 16,
        faults: Some(FaultConfig::uniform(0.0).with_panic_rate(1.0)),
        fault_seed: 3,
        ..ServeConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new());
    registry.install(tiny_delivery_model());
    let server = start(config, registry).expect("bind");
    let addr = server.addr();

    let (status, body) = roundtrip(
        addr,
        b"POST /v1/solve?dataset=delivery&gen_seed=7&method=smore HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 500, "body: {body}");
    assert!(body.contains("panicked"), "body names the cause: {body}");

    // Both attempts were contained (batch forward, then the solo retry):
    // two panics, two respawns, pool intact, server alive. The respawn
    // counter trails the panic counter until the supervisor joins the dead
    // worker thread, so poll until they converge.
    let (status, _) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    let panics = metric(addr, "smore_worker_panics_total");
    assert!(panics >= 2, "batch forward and solo retry must both be contained, got {panics}");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let respawns = metric(addr, "smore_worker_respawns_total");
        if respawns == panics {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "every panic must trigger exactly one respawn: {panics} panics, {respawns} respawns"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(metric(addr, "smore_worker_pool_size"), 1);

    // Shutdown must drain cleanly — `outstanding` reached zero.
    server.stop();
    server.join();
}

#[test]
fn panicking_request_is_answered_with_structured_500_and_pool_recovers() {
    // Deterministic worst case: every solver operation panics, so the very
    // first solve hits the supervision boundary.
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 16,
        faults: Some(FaultConfig::uniform(0.0).with_panic_rate(1.0)),
        fault_seed: 3,
        ..ServeConfig::default()
    };
    let server = start(config, Arc::new(ModelRegistry::new())).expect("bind");
    let addr = server.addr();

    let (status, body) = roundtrip(addr, solve_request(0).as_bytes());
    assert_eq!(status, 500, "panicked handler must answer a structured 500");
    assert!(body.contains("panicked"), "body names the cause: {body}");

    // The lone worker died with the panic; the supervisor must have
    // respawned it, and the replacement must answer a harmless request.
    let (status, _) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(metric(addr, "smore_worker_pool_size"), 1);
    assert!(metric(addr, "smore_worker_panics_total") >= 1);

    server.stop();
    server.join();
}
