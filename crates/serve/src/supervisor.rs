//! Supervised worker pool: per-request panic containment, quarantine +
//! respawn, and a watchdog enforcing hard per-request deadlines.
//!
//! The pool holds `threads` workers, each owning one [`SolveSession`]. A
//! request handler runs inside `catch_unwind`; a panic is contained to the
//! request, the client gets a structured 500, and the worker thread exits
//! — its session is quarantined (a panic mid-solve may leave memo state
//! inconsistent) and the supervisor respawns a fresh worker in the same
//! slot, so the pool never shrinks while the server runs.
//!
//! The watchdog covers the failure `catch_unwind` cannot: a solver that
//! wedges (infinite loop, pathological instance) without panicking. Each
//! worker arms a per-slot watch entry before dispatching; the watchdog
//! scans the slots and, past the hard deadline, *takes* the entry, answers
//! the client with a structured 504, and shuts the socket down. Take-
//! ownership on a `Mutex<Option<..>>` means exactly one side ever writes a
//! response — there is no double-write race by construction. The wedged
//! solve finishes (or not) in the background; the client is long gone.
//!
//! Everything observable lands in `/metrics`: `smore_worker_panics_total`,
//! `smore_worker_respawns_total`, `smore_watchdog_kills_total`, and the
//! `smore_worker_pool_size` gauge.

use std::net::{Shutdown, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smore::SolveSession;

use crate::api::{endpoint_of, error_response, Api};
use crate::http::{read_request, write_response};
use crate::metrics::{Endpoint, Metrics};
use crate::queue::BoundedQueue;
use crate::server::ServeConfig;

/// How often the watchdog scans the armed slots.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// How often the supervisor checks worker liveness.
const SUPERVISOR_POLL: Duration = Duration::from_millis(5);

/// Why a worker's loop ended.
enum ExitReason {
    /// The queue shut down and drained: normal exit, no respawn.
    Drained,
    /// A request handler panicked: session quarantined, respawn me.
    Panicked,
}

/// One in-flight request the watchdog is covering. Held in a
/// `Mutex<Option<ArmedRequest>>`; whoever `take`s it owns the response.
struct ArmedRequest {
    /// A clone of the connection (shares the socket with the worker's).
    stream: TcpStream,
    /// Metrics dimension for the 504 the watchdog may record.
    endpoint: Endpoint,
    /// Accept timestamp, for the latency histogram.
    arrival: Instant,
    /// Past this instant the watchdog answers 504.
    deadline: Instant,
}

type WatchSlot = Arc<Mutex<Option<ArmedRequest>>>;

fn lock_slot(slot: &WatchSlot) -> std::sync::MutexGuard<'_, Option<ArmedRequest>> {
    // Arm/claim/kill are all single `Option` stores; poisoning carries no
    // partial state worth propagating.
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything needed to (re)spawn one worker. Cloned Arcs only, so the
/// supervisor thread can keep spawning after `start_supervised_pool`
/// returns.
struct WorkerCtx {
    queue: Arc<BoundedQueue<(TcpStream, Instant)>>,
    api: Arc<Api>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
    slots: Vec<WatchSlot>,
}

impl WorkerCtx {
    fn spawn(&self, index: usize) -> JoinHandle<ExitReason> {
        let queue = Arc::clone(&self.queue);
        let api = Arc::clone(&self.api);
        let metrics = Arc::clone(&self.metrics);
        let config = self.config.clone();
        let slot = Arc::clone(&self.slots[index]);
        std::thread::spawn(move || worker_loop(&queue, &api, &metrics, &config, &slot))
    }
}

/// Builds the session a fresh worker starts with. Fault injection (chaos
/// testing) uses one shared seed: the injected fault schedule is a pure
/// function of (seed, problem), so responses stay byte-identical no matter
/// which worker answers — the same determinism contract as healthy serving.
fn make_session(config: &ServeConfig) -> SolveSession {
    match config.faults {
        Some(faults) => SolveSession::with_faults(faults, config.fault_seed),
        None => SolveSession::new(),
    }
}

fn worker_loop(
    queue: &BoundedQueue<(TcpStream, Instant)>,
    api: &Api,
    metrics: &Metrics,
    config: &ServeConfig,
    slot: &WatchSlot,
) -> ExitReason {
    let mut session = make_session(config);
    while let Some((mut stream, arrival)) = queue.pop() {
        metrics.set_queue_depth(queue.depth());
        if !serve_supervised(&mut stream, arrival, api, metrics, config, &mut session, slot) {
            return ExitReason::Panicked;
        }
    }
    ExitReason::Drained
}

/// Parses, dispatches (inside `catch_unwind`), answers, and records one
/// connection. Returns `false` when the handler panicked and the worker
/// must quarantine its session by exiting.
#[allow(clippy::too_many_arguments)]
fn serve_supervised(
    stream: &mut TcpStream,
    arrival: Instant,
    api: &Api,
    metrics: &Metrics,
    config: &ServeConfig,
    session: &mut SolveSession,
    slot: &WatchSlot,
) -> bool {
    // The read phase is covered by the socket timeout, not the watchdog: a
    // slow-loris client costs at most `read_timeout`, never a worker.
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let request = match read_request(stream, config.max_body_bytes) {
        Ok(request) => request,
        Err(parse_err) => {
            let response = error_response(parse_err.status(), parse_err.to_string());
            let _ = write_response(stream, &response);
            metrics.record(
                Endpoint::Other,
                response.status,
                arrival.elapsed().as_secs_f64() * 1000.0,
            );
            return true;
        }
    };
    let endpoint = endpoint_of(&request.path);

    // Arm the watchdog. If the socket cannot be cloned (fd exhaustion) the
    // request runs uncovered — the worker then always owns the response.
    let armed = stream.try_clone().ok().map(|covered| ArmedRequest {
        stream: covered,
        endpoint,
        arrival,
        deadline: Instant::now() + config.hard_deadline,
    });
    let covered = armed.is_some();
    if covered {
        *lock_slot(slot) = armed;
    }

    // smore-lint: allow(E2): the supervision boundary. A panicking handler
    // is contained here: the client gets a structured 500, the session is
    // quarantined, and the supervisor respawns the worker.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| api.handle(session, &request)));

    // Claim the response right to disarm the watchdog. `None` means the
    // watchdog already answered 504 — drop our (late) result unsent.
    let we_answer = if covered { lock_slot(slot).take().is_some() } else { true };

    match outcome {
        Ok(response) => {
            if we_answer {
                let _ = write_response(stream, &response);
                metrics.record(endpoint, response.status, arrival.elapsed().as_secs_f64() * 1000.0);
            }
            true
        }
        Err(_) => {
            metrics.record_worker_panic();
            if we_answer {
                let response = error_response(500, "internal error: request handler panicked");
                let _ = write_response(stream, &response);
                metrics.record(endpoint, 500, arrival.elapsed().as_secs_f64() * 1000.0);
            }
            false
        }
    }
}

fn watchdog_loop(slots: &[WatchSlot], stop: &AtomicBool, metrics: &Metrics) {
    while !stop.load(Ordering::SeqCst) {
        for slot in slots {
            let overdue = {
                let mut guard = lock_slot(slot);
                match guard.as_ref() {
                    Some(armed) if Instant::now() >= armed.deadline => guard.take(),
                    _ => None,
                }
            };
            if let Some(mut armed) = overdue {
                let response =
                    error_response(504, "request exceeded the hard deadline; solver abandoned");
                let _ = write_response(&mut armed.stream, &response);
                // Shut the shared socket down so the client sees EOF now,
                // not when the wedged solve eventually finishes.
                let _ = armed.stream.shutdown(Shutdown::Both);
                metrics.record_watchdog_kill();
                metrics.record(armed.endpoint, 504, armed.arrival.elapsed().as_secs_f64() * 1000.0);
            }
        }
        std::thread::sleep(WATCHDOG_POLL);
    }
}

/// Spawns the supervised worker pool plus its watchdog, and the supervisor
/// thread that watches both. The returned handle joins once every worker
/// has drained after queue shutdown.
pub(crate) fn start_supervised_pool(
    queue: Arc<BoundedQueue<(TcpStream, Instant)>>,
    api: Arc<Api>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
) -> JoinHandle<()> {
    let n = config.threads.max(1);
    let slots: Vec<WatchSlot> = (0..n).map(|_| Arc::new(Mutex::new(None))).collect();
    let ctx = WorkerCtx { queue, api, metrics: Arc::clone(&metrics), config, slots };
    ctx.metrics.set_pool_size(n);

    let mut handles: Vec<Option<JoinHandle<ExitReason>>> =
        (0..n).map(|i| Some(ctx.spawn(i))).collect();

    let watchdog_stop = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let slots = ctx.slots.clone();
        let stop = Arc::clone(&watchdog_stop);
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || watchdog_loop(&slots, &stop, &metrics))
    };

    std::thread::spawn(move || {
        loop {
            let mut drained = 0;
            for (i, slot) in handles.iter_mut().enumerate() {
                let finished = slot.as_ref().is_some_and(|h| h.is_finished());
                if finished {
                    // smore-lint: allow(E1): is_some_and on the line above
                    // guarantees the slot is occupied.
                    let handle = slot.take().expect("checked above");
                    // A join error means the thread panicked outside the
                    // per-request guard (a worker-loop bug): still respawn
                    // — the pool must not shrink while serving.
                    let reason = handle.join().unwrap_or(ExitReason::Panicked);
                    if matches!(reason, ExitReason::Panicked) {
                        metrics.record_worker_respawn();
                        *slot = Some(ctx.spawn(i));
                    }
                }
                if slot.is_none() {
                    drained += 1;
                }
            }
            metrics.set_pool_size(n - drained);
            if drained == n {
                break;
            }
            std::thread::sleep(SUPERVISOR_POLL);
        }
        watchdog_stop.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
    })
}
