//! Supervised worker pool over micro-batched jobs: per-request panic
//! containment, quarantine + respawn, and a watchdog enforcing hard
//! per-job deadlines.
//!
//! The pool holds `threads` workers, each owning one [`SolveSession`] and
//! a small generated-instance cache. Workers pop `Job`s — micro-batches
//! of planned work items — and answer each item with a `Completion` sent
//! back to the event loop, which owns all sockets. Within a job, admitted
//! model solves sharing a checkpoint version run as **one**
//! [`SolveSession::solve_tasnet_batch`] forward pass (the micro-batch
//! payoff); every other item executes solo. Responses are byte-identical
//! either way — the batch primitive proves row/singleton equivalence — so
//! batch placement is invisible to clients.
//!
//! Panic containment per item: each item's execution runs inside
//! `catch_unwind`. A panic answers *that* item with a structured 500,
//! requeues the job's unanswered remainder at the front of the queue (the
//! clients were never told 503; their work must not be lost), and exits
//! the worker — its session is quarantined and the supervisor respawns a
//! fresh worker in the same slot. A panic inside a *shared* forward pass
//! cannot be pinned to one item, so the group's items are requeued as
//! singleton jobs marked `retried`: a retried item never re-enters the
//! batch forward but runs through the per-item path, where innocents
//! complete normally and the guilty item panics inside its own
//! `catch_unwind` and collects a structured 500 — a deterministic forward
//! panic therefore costs at most two attempts, never an unbounded
//! respawn loop. Every recorded panic coincides with exactly one worker
//! exit, so `smore_worker_panics_total == smore_worker_respawns_total`
//! holds under any interleaving.
//!
//! The watchdog covers the failure `catch_unwind` cannot: a solver that
//! wedges without panicking. Each worker arms a per-slot watch over its
//! whole job before touching it and claims items one by one as it answers
//! them; past the hard deadline the watchdog *takes* the watch and answers
//! every unclaimed item with a 504 completion that also closes the
//! connection. Take-ownership on a `Mutex<Option<..>>` means exactly one
//! side ever answers a given item — there is no double-write race by
//! construction.
//!
//! Everything observable lands in `/metrics`: `smore_worker_panics_total`,
//! `smore_worker_respawns_total`, `smore_watchdog_kills_total`, and the
//! `smore_worker_pool_size` gauge.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smore::SolveSession;
use smore_model::{DeadlineSpec, Instance, Solution};

use crate::api::{error_response, Api, InstanceCache, WorkItem, WorkKind};
use crate::http::Response;
use crate::metrics::{Endpoint, Metrics};
use crate::poller::ConnToken;
use crate::queue::BoundedQueue;
use crate::registry::LoadedModel;
use crate::server::ServeConfig;

/// How often the watchdog scans the armed slots.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// How often the supervisor checks worker liveness.
const SUPERVISOR_POLL: Duration = Duration::from_millis(5);

/// Generated-instance cache entries per worker (keyed by dataset, scale,
/// seed — see [`InstanceCache`]).
const WORKER_CACHE_ENTRIES: usize = 32;

/// One planned request inside a job.
pub(crate) struct JobItem {
    /// The connection that asked (generation-guarded).
    pub(crate) conn: ConnToken,
    /// Pipelining sequence number on that connection.
    pub(crate) seq: u64,
    /// Accept-to-answer clock for the latency histogram.
    pub(crate) arrival: Instant,
    /// The validated work.
    pub(crate) work: WorkItem,
    /// This item already survived a shared-forward panic and was requeued
    /// solo. It must skip phase-1 batch grouping and run through the
    /// per-item path, whose `catch_unwind` converts a second panic into a
    /// structured 500 — otherwise a deterministic forward panic (fault
    /// injection, a poison instance) would re-enter the batch forward and
    /// retry forever, killing a worker per attempt.
    pub(crate) retried: bool,
}

/// A micro-batch of planned requests, dispatched as one queue handoff.
pub(crate) type Job = Vec<JobItem>;

/// A finished answer travelling back to the event loop, which writes it
/// on the owning connection (in pipeline order) and records the metrics.
pub(crate) struct Completion {
    /// The connection to answer on.
    pub(crate) conn: ConnToken,
    /// Pipelining sequence number of the request being answered.
    pub(crate) seq: u64,
    /// Metrics dimension.
    pub(crate) endpoint: Endpoint,
    /// Accept timestamp of the request.
    pub(crate) arrival: Instant,
    /// The response to encode and write.
    pub(crate) response: Response,
    /// Close the connection after writing (watchdog kills).
    pub(crate) close_conn: bool,
}

/// Why a worker's loop ended.
enum ExitReason {
    /// The queue shut down and drained: normal exit, no respawn.
    Drained,
    /// A request handler panicked: session quarantined, respawn me.
    Panicked,
}

/// One unanswered job item under watchdog cover. Whoever `take`s an entry
/// owns that item's response.
struct WatchEntry {
    conn: ConnToken,
    seq: u64,
    endpoint: Endpoint,
    arrival: Instant,
}

/// A worker's in-flight job as the watchdog sees it.
struct JobWatch {
    /// Past this instant the watchdog answers every unclaimed item.
    deadline: Instant,
    /// One slot per job item; `None` once claimed by either side.
    pending: Vec<Option<WatchEntry>>,
}

type WatchSlot = Arc<Mutex<Option<JobWatch>>>;

fn lock_slot(slot: &WatchSlot) -> std::sync::MutexGuard<'_, Option<JobWatch>> {
    // Arm/claim/kill are all single `Option` stores; poisoning carries no
    // partial state worth propagating.
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything needed to (re)spawn one worker. Cloned Arcs only, so the
/// supervisor thread can keep spawning after `start_supervised_pool`
/// returns.
struct WorkerCtx {
    queue: Arc<BoundedQueue<Job>>,
    completions: Sender<Completion>,
    api: Arc<Api>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
    slots: Vec<WatchSlot>,
}

impl WorkerCtx {
    fn spawn(&self, index: usize) -> JoinHandle<ExitReason> {
        let queue = Arc::clone(&self.queue);
        let completions = self.completions.clone();
        let api = Arc::clone(&self.api);
        let metrics = Arc::clone(&self.metrics);
        let config = self.config.clone();
        let slot = Arc::clone(&self.slots[index]);
        std::thread::spawn(move || {
            worker_loop(&queue, &completions, &api, &metrics, &config, &slot)
        })
    }
}

/// Builds the session a fresh worker starts with. Fault injection (chaos
/// testing) uses one shared seed: the injected fault schedule is a pure
/// function of (seed, problem), so responses stay byte-identical no matter
/// which worker answers — the same determinism contract as healthy serving.
fn make_session(config: &ServeConfig) -> SolveSession {
    match config.faults {
        Some(faults) => SolveSession::with_faults(faults, config.fault_seed),
        None => SolveSession::new(),
    }
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    completions: &Sender<Completion>,
    api: &Api,
    metrics: &Metrics,
    config: &ServeConfig,
    slot: &WatchSlot,
) -> ExitReason {
    let mut session = make_session(config);
    let mut cache = InstanceCache::new(WORKER_CACHE_ENTRIES);
    while let Some(job) = queue.pop() {
        metrics.set_queue_depth(queue.depth());
        let ctx = JobCtx { queue, completions, api, metrics, config, slot };
        if !process_job(job, &ctx, &mut session, &mut cache) {
            return ExitReason::Panicked;
        }
    }
    ExitReason::Drained
}

/// Borrowed context for one job's processing.
struct JobCtx<'a> {
    queue: &'a BoundedQueue<Job>,
    completions: &'a Sender<Completion>,
    api: &'a Api,
    metrics: &'a Metrics,
    config: &'a ServeConfig,
    slot: &'a WatchSlot,
}

impl JobCtx<'_> {
    /// Claims item `i` from this worker's watch. `false` means the
    /// watchdog already answered it (504) — drop our result unsent.
    fn claim(&self, i: usize) -> bool {
        let mut guard = lock_slot(self.slot);
        match guard.as_mut() {
            Some(watch) => watch.pending.get_mut(i).and_then(Option::take).is_some(),
            None => false,
        }
    }

    /// Sends a completion back to the event loop. A send error means the
    /// loop already exited (shutdown teardown); the answer has nowhere to
    /// go and is dropped with it.
    fn answer(&self, entry: &JobItem, response: Response) {
        let _ = self.completions.send(Completion {
            conn: entry.conn,
            seq: entry.seq,
            endpoint: entry.work.endpoint,
            arrival: entry.arrival,
            response,
            close_conn: false,
        });
    }
}

/// Processes one job: one shared forward pass per checkpoint version, then
/// per-item finishing in arrival order. Returns `false` when a panic was
/// contained and the worker must quarantine its session by exiting.
fn process_job(
    job: Job,
    ctx: &JobCtx<'_>,
    session: &mut SolveSession,
    cache: &mut InstanceCache,
) -> bool {
    // Arm the watchdog over the whole job before touching any item.
    let deadline = Instant::now() + ctx.config.hard_deadline;
    *lock_slot(ctx.slot) = Some(JobWatch {
        deadline,
        pending: job
            .iter()
            .map(|item| {
                Some(WatchEntry {
                    conn: item.conn,
                    seq: item.seq,
                    endpoint: item.work.endpoint,
                    arrival: item.arrival,
                })
            })
            .collect(),
    });

    let mut items: Vec<Option<JobItem>> = job.into_iter().map(Some).collect();

    // Phase 1 — group admitted, budget-free model solves by checkpoint
    // version and run each group as one shared forward pass.
    let mut groups: Vec<(u64, Arc<LoadedModel>, Vec<usize>)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let Some(item) = item else { continue };
        // A retry after a shared-forward panic runs per-item (phase 2),
        // where its own catch_unwind answers a 500 if it panics again.
        if item.retried {
            continue;
        }
        if let Some((model, version)) = item.work.batch_model() {
            match groups.iter_mut().find(|(v, _, _)| *v == version) {
                Some((_, _, idxs)) => idxs.push(i),
                None => groups.push((version, Arc::clone(model), vec![i])),
            }
        }
    }
    let mut forwards: Vec<Option<Option<Solution>>> = items.iter().map(|_| None).collect();
    for (_, model, idxs) in &groups {
        let instances: Vec<Arc<Instance>> = idxs
            .iter()
            .filter_map(|&i| items[i].as_ref().map(|item| cache.materialize(&item.work.source)))
            .collect();
        let refs: Vec<&Instance> = instances.iter().map(|a| a.as_ref()).collect();
        // smore-lint: allow(E2): the supervision boundary for the shared
        // forward pass; a panic here is contained and the group retried.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            session.solve_tasnet_batch(&model.net, &refs)
        }));
        match outcome {
            Ok(rows) => {
                for (k, &i) in idxs.iter().enumerate() {
                    forwards[i] = Some(rows.get(k).cloned().flatten());
                }
            }
            Err(_) => {
                ctx.metrics.record_worker_panic();
                requeue_after_forward_panic(&mut items, idxs, ctx);
                return false;
            }
        }
    }

    // Phase 2 — answer every item in arrival order. Batched model items
    // scatter their precomputed forward; everything else executes solo.
    for i in 0..items.len() {
        let Some(item) = items[i].take() else { continue };
        let forward = forwards[i].take();
        let handler = || match (&item.work.kind, forward) {
            (&WorkKind::Model { version, admitted: true, budget_ms: None, .. }, Some(fwd)) => {
                let instance = cache.materialize(&item.work.source);
                let deadline = DeadlineSpec { budget_ms: None }.start();
                ctx.api.finish_model_solve(session, version, true, deadline, &instance, fwd)
            }
            _ => ctx.api.execute(session, &item.work, cache),
        };
        // smore-lint: allow(E2): the per-item supervision boundary. A
        // panicking handler is contained here: the client gets a
        // structured 500, the session is quarantined, and the supervisor
        // respawns the worker.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(handler));
        match outcome {
            Ok(response) => {
                if ctx.claim(i) {
                    ctx.answer(&item, response);
                }
            }
            Err(_) => {
                ctx.metrics.record_worker_panic();
                if ctx.claim(i) {
                    ctx.answer(
                        &item,
                        error_response(500, "internal error: request handler panicked"),
                    );
                }
                requeue_rest(&mut items, ctx);
                return false;
            }
        }
    }
    *lock_slot(ctx.slot) = None;
    true
}

/// After a shared forward pass panicked: requeue the group's items as
/// singleton jobs marked `retried` — on retry they skip batch grouping and
/// run per-item, so innocents complete normally and the guilty item panics
/// once more inside the per-item `catch_unwind`, collecting a structured
/// 500 instead of looping through the batch forward forever. Everything
/// else still unanswered requeues as one job. Items the watchdog already
/// claimed are dropped — it answered them with a 504.
fn requeue_after_forward_panic(items: &mut [Option<JobItem>], group: &[usize], ctx: &JobCtx<'_>) {
    let Some(watch) = lock_slot(ctx.slot).take() else {
        // The watchdog took the whole job and answered every item.
        return;
    };
    let mut singles: Vec<Job> = Vec::new();
    let mut rest: Job = Vec::new();
    for (i, slot) in items.iter_mut().enumerate() {
        let unclaimed = watch.pending.get(i).map(Option::is_some).unwrap_or(false);
        let Some(mut item) = slot.take() else { continue };
        if !unclaimed {
            continue;
        }
        if group.contains(&i) {
            item.retried = true;
            singles.push(vec![item]);
        } else {
            rest.push(item);
        }
    }
    // `requeue` pushes to the front, so push in reverse of the desired
    // head order: singleton retries first, then the untouched remainder.
    if !rest.is_empty() {
        ctx.queue.requeue(rest);
    }
    for single in singles.into_iter().rev() {
        ctx.queue.requeue(single);
    }
}

/// After a per-item panic: requeue every still-unanswered item as one job.
fn requeue_rest(items: &mut [Option<JobItem>], ctx: &JobCtx<'_>) {
    let Some(watch) = lock_slot(ctx.slot).take() else {
        return;
    };
    let rest: Job = items
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| watch.pending.get(*i).map(Option::is_some).unwrap_or(false))
        .filter_map(|(_, slot)| slot.take())
        .collect();
    if !rest.is_empty() {
        ctx.queue.requeue(rest);
    }
}

fn watchdog_loop(
    slots: &[WatchSlot],
    stop: &AtomicBool,
    completions: &Sender<Completion>,
    metrics: &Metrics,
) {
    while !stop.load(Ordering::SeqCst) {
        for slot in slots {
            let overdue = {
                let mut guard = lock_slot(slot);
                match guard.as_ref() {
                    Some(watch) if Instant::now() >= watch.deadline => guard.take(),
                    _ => None,
                }
            };
            if let Some(watch) = overdue {
                for entry in watch.pending.into_iter().flatten() {
                    metrics.record_watchdog_kill();
                    // Closing the connection is what makes the kill real
                    // for a pipelining client: later requests on the same
                    // connection died with the wedged worker.
                    let _ = completions.send(Completion {
                        conn: entry.conn,
                        seq: entry.seq,
                        endpoint: entry.endpoint,
                        arrival: entry.arrival,
                        response: error_response(
                            504,
                            "request exceeded the hard deadline; solver abandoned",
                        ),
                        close_conn: true,
                    });
                }
            }
        }
        std::thread::sleep(WATCHDOG_POLL);
    }
}

/// Spawns the supervised worker pool plus its watchdog, and the supervisor
/// thread that watches both. The returned handle joins once every worker
/// has drained after queue shutdown.
pub(crate) fn start_supervised_pool(
    queue: Arc<BoundedQueue<Job>>,
    completions: Sender<Completion>,
    api: Arc<Api>,
    metrics: Arc<Metrics>,
    config: ServeConfig,
) -> JoinHandle<()> {
    let n = config.threads.max(1);
    let slots: Vec<WatchSlot> = (0..n).map(|_| Arc::new(Mutex::new(None))).collect();
    let ctx = WorkerCtx { queue, completions, api, metrics: Arc::clone(&metrics), config, slots };
    ctx.metrics.set_pool_size(n);

    let mut handles: Vec<Option<JoinHandle<ExitReason>>> =
        (0..n).map(|i| Some(ctx.spawn(i))).collect();

    let watchdog_stop = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let slots = ctx.slots.clone();
        let stop = Arc::clone(&watchdog_stop);
        let completions = ctx.completions.clone();
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || watchdog_loop(&slots, &stop, &completions, &metrics))
    };

    std::thread::spawn(move || {
        loop {
            let mut drained = 0;
            for (i, slot) in handles.iter_mut().enumerate() {
                let finished = slot.as_ref().is_some_and(|h| h.is_finished());
                if finished {
                    // smore-lint: allow(E1): is_some_and on the line above
                    // guarantees the slot is occupied.
                    let handle = slot.take().expect("checked above");
                    // A join error means the thread panicked outside the
                    // per-request guard (a worker-loop bug): still respawn
                    // — the pool must not shrink while serving.
                    let reason = handle.join().unwrap_or(ExitReason::Panicked);
                    if matches!(reason, ExitReason::Panicked) {
                        metrics.record_worker_respawn();
                        *slot = Some(ctx.spawn(i));
                    }
                }
                if slot.is_none() {
                    drained += 1;
                }
            }
            metrics.set_pool_size(n - drained);
            if drained == n {
                break;
            }
            std::thread::sleep(SUPERVISOR_POLL);
        }
        watchdog_stop.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
    })
}
