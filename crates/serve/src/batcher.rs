//! Micro-batch admission: coalesces planned work items into one queue
//! handoff (and, downstream, one shared model-forward pass for items on the
//! same checkpoint version).
//!
//! The event loop admits solver-bound items here instead of pushing each
//! one onto the work queue individually. A batch flushes when it reaches
//! `max_batch` items (reason `full`) or when its oldest item has waited
//! `max_delay` (reason `deadline`). The delay bound keeps the latency cost
//! of coalescing explicit and small — a lone request is never held longer
//! than `max_delay`.
//!
//! The batcher never inspects item payloads, so batch *placement* is pure
//! arrival-order bookkeeping; determinism of the responses themselves is
//! the handlers' contract (see `api.rs`).

use std::time::{Duration, Instant};

use crate::metrics::FlushReason;

/// Accumulates items for micro-batch admission.
pub(crate) struct Batcher<T> {
    pending: Vec<T>,
    oldest: Option<Instant>,
    max_batch: usize,
    max_delay: Duration,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `max_batch` items or `max_delay` age,
    /// whichever comes first (`max_batch` minimum 1).
    pub(crate) fn new(max_batch: usize, max_delay: Duration) -> Self {
        Batcher { pending: Vec::new(), oldest: None, max_batch: max_batch.max(1), max_delay }
    }

    /// Admits one item. Returns the full batch when this item filled it;
    /// otherwise the item waits for more arrivals or the deadline sweep.
    pub(crate) fn admit(&mut self, item: T, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.is_empty() {
            self.oldest = Some(now);
        }
        self.pending.push(item);
        if self.pending.len() >= self.max_batch {
            return self.flush(FlushReason::Full);
        }
        None
    }

    /// Whether the pending batch's oldest item has aged past `max_delay`.
    pub(crate) fn due(&self, now: Instant) -> bool {
        match self.oldest {
            Some(oldest) => now.duration_since(oldest) >= self.max_delay,
            None => false,
        }
    }

    /// Time until the pending batch comes due, if anything is pending —
    /// the event loop's sleep bound.
    pub(crate) fn due_in(&self, now: Instant) -> Option<Duration> {
        let oldest = self.oldest?;
        Some(self.max_delay.saturating_sub(now.duration_since(oldest)))
    }

    /// Hands out the pending batch (empty → `None`).
    pub(crate) fn flush(&mut self, reason: FlushReason) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest = None;
        Some((std::mem::take(&mut self.pending), reason))
    }

    /// Number of items waiting in the pending batch.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_max_batch_and_flushes_full() {
        let mut b = Batcher::new(3, Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(b.admit(1, t0).is_none());
        assert!(b.admit(2, t0).is_none());
        let (batch, reason) = b.admit(3, t0).expect("third item fills the batch");
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(reason, FlushReason::Full);
        assert_eq!(b.pending_len(), 0);
        assert!(!b.due(t0 + Duration::from_secs(1)), "flushed batcher is never due");
    }

    #[test]
    fn deadline_is_measured_from_the_oldest_item() {
        let mut b = Batcher::new(8, Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(b.admit("a", t0).is_none());
        // A later arrival does not extend the oldest item's deadline.
        assert!(b.admit("b", t0 + Duration::from_millis(9)).is_none());
        assert!(!b.due(t0 + Duration::from_millis(9)));
        assert!(b.due(t0 + Duration::from_millis(10)));
        assert_eq!(b.due_in(t0 + Duration::from_millis(4)), Some(Duration::from_millis(6)));
        let (batch, reason) = b.flush(FlushReason::Deadline).expect("pending items");
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(reason, FlushReason::Deadline);
        assert!(b.flush(FlushReason::Deadline).is_none(), "second flush is empty");
    }

    #[test]
    fn job_at_exactly_max_delay_age_is_due_and_flushes_deadline() {
        // Boundary pin: `due` uses >=, so a job admitted exactly
        // `max_delay` (i.e. --max-delay-us) ago is flushed on that very
        // sweep with reason `deadline` — not held for one more iteration.
        let mut b = Batcher::new(8, Duration::from_micros(500));
        let t0 = Instant::now();
        assert!(b.admit("job", t0).is_none());
        let at_deadline = t0 + Duration::from_micros(500);
        assert_eq!(b.due_in(at_deadline), Some(Duration::ZERO), "due_in hits zero, not 1us");
        assert!(b.due(at_deadline), "exact max_delay age must already be due");
        let (batch, reason) = b.flush(FlushReason::Deadline).expect("due batch flushes");
        assert_eq!(batch, vec!["job"]);
        assert_eq!(reason, FlushReason::Deadline);
        assert!(!b.due(at_deadline + Duration::from_secs(1)), "nothing pending after flush");
    }

    #[test]
    fn max_batch_one_degenerates_to_immediate_passthrough() {
        let mut b = Batcher::new(1, Duration::from_millis(500));
        let t0 = Instant::now();
        let (batch, reason) = b.admit(42, t0).expect("batch of one flushes at once");
        assert_eq!(batch, vec![42]);
        assert_eq!(reason, FlushReason::Full);
    }
}
