//! The `POST /v1/events` surface: envelope parsing and the per-session
//! online-world store.
//!
//! The endpoint streams batched lifecycle events (`task_arrived`,
//! `task_cancelled`, `worker_progress`, `worker_dropped`, `tick`) into a
//! [`smore::OnlineWorld`] kept per session id. Two halves mirror the
//! plan/execute split of the rest of the API:
//!
//! * [`EventsPlanner`] runs on the event-loop thread. It parses the JSON
//!   envelope with a hand-rolled, depth-capped recursive-descent parser —
//!   pure CPU over the request bytes, no locks, no I/O — so the C2
//!   no-blocking contract holds by construction. Hand-rolling also keeps
//!   the endpoint fully exercisable in offline builds whose serde_json
//!   stand-in cannot deserialize (only the optional inline `instance`
//!   form needs a real serde_json).
//! * [`EventsStore`] runs on worker threads. It owns the sessions behind
//!   one mutex (a `Vec` scan, not a hash map — D1), applies each batch
//!   transactionally through [`smore::OnlineWorld::apply_batch_with`],
//!   and enforces the per-session sequence-number contract: batch `seq`
//!   must equal the number of batches already applied, so replaying a
//!   recorded stream is the only way to advance a session — which is what
//!   makes the final-state checksum a meaningful determinism probe.
//!
//! Sessions are created by `seq == 0` envelopes (which carry the instance
//! source and optional `rejection_penalty`), advanced by `seq > 0`
//! envelopes, and evicted least-recently-used beyond a fixed cap.

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

use smore::{OnlineConfig, OnlineEvent, OnlineWorld, ReplanMode};
use smore_geo::Point;
use smore_model::{
    EventsAccounting, EventsPair, EventsResponse, EventsWorker, GenerateSpec, Instance,
};

/// Live sessions kept per server (LRU beyond this).
const SESSION_CAP: usize = 32;

/// Hard cap on events per envelope; larger batches are a 400.
const MAX_EVENTS_PER_BATCH: usize = 1024;

/// Session-id length cap.
const MAX_SESSION_ID: usize = 64;

/// JSON nesting depth cap for the hand parser (an inline `instance` is the
/// deepest legitimate envelope; 64 leaves headroom without letting a
/// bracket bomb recurse unboundedly).
const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value. Objects are ordered `Vec`s, not hash maps: the
/// serve crate is D1-scoped (byte-identical responses forbid hash-order
/// iteration anywhere on the request path).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are f64 on the wire).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes after JSON value at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("JSON nesting deeper than {MAX_JSON_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err("truncated JSON: expected a value".to_string()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("truncated JSON string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("truncated escape sequence".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("unpaired surrogate escape".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("unpaired surrogate escape".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate escape".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err("invalid unicode escape".to_string()),
                            }
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                // The body passed an UTF-8 check before parsing; multibyte
                // sequences are copied through verbatim.
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("invalid UTF-8 inside string".to_string()),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err("truncated unicode escape".to_string());
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err("invalid unicode escape digit".to_string()),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number token".to_string())?;
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {token:?} at offset {start}"))
    }
}

/// Serializes a parsed [`Json`] value back to JSON text (used to hand the
/// inline `instance` form to serde's validate-on-deserialize path).
fn write_json(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        // `{}` prints integral f64s without a trailing `.0`, so integer
        // fields survive the round trip into serde's u64/usize slots.
        Json::Num(n) => out.push_str(&format!("{n}")),
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(&Json::Str(key.clone()), out);
                out.push(':');
                write_json(item, out);
            }
            out.push('}');
        }
    }
}

fn obj_get<'a>(entries: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    entries.iter().find_map(|(k, v)| (k == key).then_some(v))
}

fn as_f64(v: &Json, what: &str) -> Result<f64, String> {
    match v {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("{what} must be a number")),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, String> {
    match v {
        // smore-lint: allow(N1): exact integrality test on a parsed JSON
        // number — fract()==0.0 is the definition of "is an integer", not a
        // tolerance comparison.
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Ok(*n as u64),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

fn as_usize(v: &Json, what: &str) -> Result<usize, String> {
    Ok(as_u64(v, what)? as usize)
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{what} must be a string")),
    }
}

fn reject_unknown_keys(
    entries: &[(String, Json)],
    known: &[&str],
    ctx: &str,
) -> Result<(), String> {
    for (key, _) in entries {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown {ctx} field {key:?}"));
        }
    }
    Ok(())
}

/// A fully parsed `/v1/events` envelope, before instance-source resolution
/// (the planner cannot touch serde or the generator registry; `api.rs`
/// finishes the job with `plan_source`).
pub(crate) struct EventsEnvelope {
    /// Client-chosen session id.
    pub(crate) session: String,
    /// Batch sequence number within the session.
    pub(crate) seq: u64,
    /// Replan mode for this batch.
    pub(crate) mode: ReplanMode,
    /// `rejection_penalty` override (`seq == 0` only).
    pub(crate) penalty: Option<f64>,
    /// Seeded-generator instance source (`seq == 0` only).
    pub(crate) generate: Option<GenerateSpec>,
    /// Inline instance, re-serialized for serde validation (`seq == 0`
    /// only).
    pub(crate) instance_json: Option<String>,
    /// The batch events, in envelope order.
    pub(crate) events: Vec<OnlineEvent>,
}

/// The plan-time half of `/v1/events`: pure parsing, registered in the C2
/// no-blocking scope. Nothing here locks, sleeps, or touches I/O.
pub(crate) struct EventsPlanner;

impl EventsPlanner {
    /// Parses one envelope body. Every failure is a client-facing 400
    /// message; nothing panics on arbitrary, truncated, or mutated bytes.
    pub(crate) fn parse(body: &[u8]) -> Result<EventsEnvelope, String> {
        let text =
            std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
        let root = JsonParser::parse(text)?;
        let Json::Obj(entries) = root else {
            return Err("envelope must be a JSON object".to_string());
        };
        reject_unknown_keys(
            &entries,
            &["session", "seq", "mode", "gen", "instance", "rejection_penalty", "events"],
            "envelope",
        )?;

        let session =
            as_str(obj_get(&entries, "session").ok_or("envelope requires session")?, "session")?;
        if session.is_empty() || session.len() > MAX_SESSION_ID {
            return Err(format!("session id must be 1..={MAX_SESSION_ID} characters"));
        }
        if !session.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')) {
            return Err("session id must be alphanumeric plus '-', '_', '.'".to_string());
        }
        let seq = as_u64(obj_get(&entries, "seq").ok_or("envelope requires seq")?, "seq")?;

        let mode = match obj_get(&entries, "mode") {
            None => ReplanMode::Suffix,
            Some(v) => match as_str(v, "mode")? {
                "suffix" => ReplanMode::Suffix,
                "full_horizon" => ReplanMode::FullHorizon,
                other => {
                    return Err(format!("unknown mode {other:?} (expected suffix|full_horizon)"))
                }
            },
        };

        let penalty = match obj_get(&entries, "rejection_penalty") {
            None => None,
            Some(v) => {
                let p = as_f64(v, "rejection_penalty")?;
                if !p.is_finite() || p < 0.0 {
                    return Err("rejection_penalty must be finite and non-negative".to_string());
                }
                Some(p)
            }
        };

        let generate = match obj_get(&entries, "gen") {
            None => None,
            Some(Json::Obj(g)) => {
                reject_unknown_keys(g, &["dataset", "scale", "seed"], "gen")?;
                let dataset =
                    as_str(obj_get(g, "dataset").ok_or("gen requires dataset")?, "gen.dataset")?
                        .to_string();
                let scale = match obj_get(g, "scale") {
                    None => None,
                    Some(v) => Some(as_str(v, "gen.scale")?.to_string()),
                };
                let seed = match obj_get(g, "seed") {
                    None => 0,
                    Some(v) => as_u64(v, "gen.seed")?,
                };
                Some(GenerateSpec { dataset, scale, seed })
            }
            Some(_) => return Err("gen must be an object".to_string()),
        };

        let instance_json = obj_get(&entries, "instance").map(|v| {
            let mut out = String::new();
            write_json(v, &mut out);
            out
        });

        let Some(Json::Arr(raw_events)) = obj_get(&entries, "events") else {
            return Err("envelope requires an events array".to_string());
        };
        if raw_events.len() > MAX_EVENTS_PER_BATCH {
            return Err(format!(
                "batch of {} events exceeds the {MAX_EVENTS_PER_BATCH}-event cap",
                raw_events.len()
            ));
        }
        let mut events = Vec::with_capacity(raw_events.len());
        for (i, raw) in raw_events.iter().enumerate() {
            events.push(Self::parse_event(raw).map_err(|e| format!("events[{i}]: {e}"))?);
        }

        Ok(EventsEnvelope {
            session: session.to_string(),
            seq,
            mode,
            penalty,
            generate,
            instance_json,
            events,
        })
    }

    fn parse_event(raw: &Json) -> Result<OnlineEvent, String> {
        let Json::Obj(e) = raw else {
            return Err("event must be a JSON object".to_string());
        };
        let kind = as_str(obj_get(e, "type").ok_or("event requires type")?, "type")?;
        match kind {
            "task_arrived" => {
                reject_unknown_keys(
                    e,
                    &["type", "x", "y", "window_start", "window_end", "service"],
                    "task_arrived",
                )?;
                Ok(OnlineEvent::TaskArrived {
                    loc: Point::new(
                        as_f64(obj_get(e, "x").ok_or("task_arrived requires x")?, "x")?,
                        as_f64(obj_get(e, "y").ok_or("task_arrived requires y")?, "y")?,
                    ),
                    window_start: as_f64(
                        obj_get(e, "window_start").ok_or("task_arrived requires window_start")?,
                        "window_start",
                    )?,
                    window_end: as_f64(
                        obj_get(e, "window_end").ok_or("task_arrived requires window_end")?,
                        "window_end",
                    )?,
                    service: as_f64(
                        obj_get(e, "service").ok_or("task_arrived requires service")?,
                        "service",
                    )?,
                })
            }
            "task_cancelled" => {
                reject_unknown_keys(e, &["type", "task"], "task_cancelled")?;
                Ok(OnlineEvent::TaskCancelled {
                    task: as_usize(
                        obj_get(e, "task").ok_or("task_cancelled requires task")?,
                        "task",
                    )?,
                })
            }
            "worker_progress" => {
                reject_unknown_keys(e, &["type", "worker", "completed_stops"], "worker_progress")?;
                Ok(OnlineEvent::WorkerProgress {
                    worker: as_usize(
                        obj_get(e, "worker").ok_or("worker_progress requires worker")?,
                        "worker",
                    )?,
                    completed_stops: as_usize(
                        obj_get(e, "completed_stops")
                            .ok_or("worker_progress requires completed_stops")?,
                        "completed_stops",
                    )?,
                })
            }
            "worker_dropped" => {
                reject_unknown_keys(e, &["type", "worker"], "worker_dropped")?;
                Ok(OnlineEvent::WorkerDropped {
                    worker: as_usize(
                        obj_get(e, "worker").ok_or("worker_dropped requires worker")?,
                        "worker",
                    )?,
                })
            }
            "tick" => {
                reject_unknown_keys(e, &["type", "now"], "tick")?;
                Ok(OnlineEvent::Tick {
                    now: as_f64(obj_get(e, "now").ok_or("tick requires now")?, "now")?,
                })
            }
            other => Err(format!(
                "unknown event type {other:?} (expected task_arrived|task_cancelled|\
                 worker_progress|worker_dropped|tick)"
            )),
        }
    }
}

/// The execute-time half of a planned events batch (travels inside the
/// work item; the instance source rides in the item's `source` slot).
pub(crate) struct EventsWork {
    /// Session id.
    pub(crate) session: String,
    /// Batch sequence number.
    pub(crate) seq: u64,
    /// Replan mode.
    pub(crate) mode: ReplanMode,
    /// `rejection_penalty` override for session creation.
    pub(crate) penalty: Option<f64>,
    /// The batch events.
    pub(crate) events: Vec<OnlineEvent>,
}

struct OnlineSession {
    world: OnlineWorld,
    next_seq: u64,
}

/// Per-server session store: online worlds keyed by session id, advanced
/// strictly in sequence order. Locked only on worker threads (the event
/// loop plans events without touching it), held across one batch apply so
/// concurrent batches against the same session serialize.
pub struct EventsStore {
    sessions: Mutex<Vec<(String, OnlineSession)>>,
}

impl Default for EventsStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EventsStore {
    /// An empty store.
    pub fn new() -> Self {
        EventsStore { sessions: Mutex::new(Vec::new()) }
    }

    /// Applies one planned batch. `instance` must be present exactly when
    /// `work.seq == 0` (the planner enforces the envelope side of that).
    /// Returns the response plus the wall-clock milliseconds the replan
    /// (the `apply_batch_with` call) took.
    pub(crate) fn apply(
        &self,
        work: &EventsWork,
        instance: Option<Arc<Instance>>,
    ) -> Result<(EventsResponse, f64), (u16, String)> {
        // Batch apply is transactional (staged world, all-or-nothing), so
        // a poisoned lock holds no partial state worth propagating.
        let mut guard = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let sessions = &mut *guard;

        if work.seq == 0 {
            let Some(instance) = instance else {
                return Err((400, "seq 0 requires an instance source".to_string()));
            };
            let config = OnlineConfig {
                rejection_penalty: work
                    .penalty
                    .unwrap_or(OnlineConfig::default().rejection_penalty),
            };
            let world = OnlineWorld::new((*instance).clone(), config)
                .map_err(|e| (400, format!("cannot start session: {e}")))?;
            if let Some(pos) = sessions.iter().position(|(k, _)| k == &work.session) {
                // seq 0 resets an existing session — replays are idempotent.
                sessions.remove(pos);
            }
            if sessions.len() >= SESSION_CAP {
                sessions.remove(0);
            }
            sessions.push((work.session.clone(), OnlineSession { world, next_seq: 0 }));
        }

        let Some(pos) = sessions.iter().position(|(k, _)| k == &work.session) else {
            return Err((
                404,
                format!("unknown session {:?} (start one with seq 0)", work.session),
            ));
        };
        let state = &mut sessions[pos].1;
        if work.seq != state.next_seq {
            return Err((
                400,
                format!(
                    "out-of-order seq {} for session {:?}: expected seq {}",
                    work.seq, work.session, state.next_seq
                ),
            ));
        }

        let start = Instant::now();
        let outcome = state
            .world
            .apply_batch_with(&work.events, work.mode)
            .map_err(|e| (400, format!("event batch rejected: {e}")))?;
        let replan_ms = start.elapsed().as_secs_f64() * 1000.0;
        state.next_seq += 1;

        let response = EventsResponse {
            session: work.session.clone(),
            seq: work.seq,
            version: outcome.version,
            sim_time: outcome.sim_time,
            mode: work.mode.label().to_string(),
            arrived: outcome.arrived.clone(),
            committed: outcome
                .committed
                .iter()
                .map(|&(task, worker)| EventsPair { task, worker })
                .collect(),
            completed: outcome
                .completed
                .iter()
                .map(|&(task, worker)| EventsPair { task, worker })
                .collect(),
            rejected: outcome.rejected.clone(),
            expired: outcome.expired.clone(),
            cancelled: outcome.cancelled.clone(),
            released: outcome.released.clone(),
            dropped_workers: outcome.dropped_workers.clone(),
            stale_cancels: outcome.stale_cancels,
            offered: outcome.offered,
            objective: outcome.objective,
            coverage: outcome.coverage,
            penalty: outcome.penalty,
            spent: outcome.spent,
            budget: outcome.budget,
            committed_prefix: state.world.committed_prefix_len(),
            accounting: EventsAccounting {
                arrived: outcome.accounting.arrived,
                pending: outcome.accounting.pending,
                committed: outcome.accounting.committed,
                completed: outcome.accounting.completed,
                rejected: outcome.accounting.rejected,
                expired: outcome.accounting.expired,
                cancelled: outcome.accounting.cancelled,
            },
            workers: state
                .world
                .workers()
                .iter()
                .enumerate()
                .map(|(i, w)| EventsWorker {
                    worker: i,
                    executed: w.executed,
                    stops: w.route.stops.len(),
                    rtt: w.schedule.rtt,
                    incentive: w.incentive,
                    dropped: w.dropped,
                })
                .collect(),
            checksum: format!("{:016x}", outcome.checksum),
        };

        // Move-to-back LRU so cap eviction hits the stalest session.
        let entry = sessions.remove(pos);
        sessions.push(entry);
        Ok((response, replan_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};

    fn instance(seed: u64) -> Arc<Instance> {
        let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), seed);
        Arc::new(g.gen_default(&mut SmallRng::seed_from_u64(seed)))
    }

    fn envelope(session: &str, seq: u64, events_json: &str) -> Vec<u8> {
        let gen = if seq == 0 { ",\"gen\":{\"dataset\":\"delivery\",\"seed\":7}" } else { "" };
        format!("{{\"session\":\"{session}\",\"seq\":{seq}{gen},\"events\":[{events_json}]}}")
            .into_bytes()
    }

    fn work(session: &str, seq: u64, events: Vec<OnlineEvent>) -> EventsWork {
        EventsWork {
            session: session.to_string(),
            seq,
            mode: ReplanMode::Suffix,
            penalty: None,
            events,
        }
    }

    #[test]
    fn parser_round_trips_a_full_envelope() {
        let body = envelope(
            "s-1",
            0,
            r#"{"type":"tick","now":5.0},
               {"type":"task_arrived","x":10.0,"y":20.5,"window_start":30,"window_end":90,"service":5},
               {"type":"task_cancelled","task":3},
               {"type":"worker_progress","worker":0,"completed_stops":2},
               {"type":"worker_dropped","worker":1}"#,
        );
        let parsed = EventsPlanner::parse(&body).expect("parse");
        assert_eq!(parsed.session, "s-1");
        assert_eq!(parsed.seq, 0);
        assert_eq!(parsed.mode, ReplanMode::Suffix);
        assert_eq!(parsed.generate.as_ref().map(|g| g.seed), Some(7));
        assert_eq!(parsed.events.len(), 5);
        assert!(matches!(parsed.events[0], OnlineEvent::Tick { now } if now == 5.0));
        assert!(matches!(
            parsed.events[1],
            OnlineEvent::TaskArrived { window_start: 30.0, window_end: 90.0, service: 5.0, .. }
        ));
        assert!(matches!(parsed.events[2], OnlineEvent::TaskCancelled { task: 3 }));
        assert!(matches!(
            parsed.events[3],
            OnlineEvent::WorkerProgress { worker: 0, completed_stops: 2 }
        ));
        assert!(matches!(parsed.events[4], OnlineEvent::WorkerDropped { worker: 1 }));
    }

    #[test]
    fn parser_rejects_malformed_envelopes_without_panicking() {
        let cases: &[&[u8]] = &[
            b"",
            b"not json",
            b"[1,2,3]",
            b"{\"session\":\"s\"}",
            b"{\"session\":\"s\",\"seq\":0}",
            b"{\"session\":\"s\",\"seq\":-1,\"events\":[]}",
            b"{\"session\":\"s\",\"seq\":0.5,\"events\":[]}",
            b"{\"session\":\"\",\"seq\":0,\"events\":[]}",
            b"{\"session\":\"bad id\",\"seq\":0,\"events\":[]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[{\"type\":\"nope\"}]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[{\"type\":\"tick\"}]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[{\"type\":\"tick\",\"now\":\"x\"}]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[{\"type\":\"tick\",\"now\":1,\"z\":2}]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[],\"bogus\":1}",
            b"{\"session\":\"s\",\"seq\":0,\"mode\":\"psychic\",\"events\":[]}",
            b"{\"session\":\"s\",\"seq\":0,\"rejection_penalty\":-1,\"events\":[]}",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[",
            b"{\"session\":\"s\",\"seq\":0,\"events\":[]}trailing",
            b"\xff\xfe",
        ];
        for case in cases {
            assert!(
                EventsPlanner::parse(case).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn parser_caps_nesting_depth() {
        let mut body = String::from("{\"session\":\"s\",\"seq\":0,\"events\":[],\"gen\":");
        body.push_str(&"[".repeat(200));
        body.push_str(&"]".repeat(200));
        body.push('}');
        assert!(EventsPlanner::parse(body.as_bytes()).is_err());
    }

    #[test]
    fn parser_handles_string_escapes_and_unicode() {
        let body = br#"{"session":"aAb","seq":0,"events":[]}"#;
        let parsed = EventsPlanner::parse(body).expect("parse");
        assert_eq!(parsed.session, "aAb");
        // Unpaired surrogates are rejected, not panicked on.
        let bad = br#"{"session":"x","seq":0,"events":[],"mode":"\ud800"}"#;
        assert!(EventsPlanner::parse(bad).is_err());
    }

    #[test]
    fn write_json_round_trips_integers_without_decimal_points() {
        let mut out = String::new();
        write_json(
            &Json::Obj(vec![
                ("n".to_string(), Json::Num(5.0)),
                ("f".to_string(), Json::Num(2.5)),
                ("s".to_string(), Json::Str("a\"b".to_string())),
            ]),
            &mut out,
        );
        assert_eq!(out, r#"{"n":5,"f":2.5,"s":"a\"b"}"#);
    }

    #[test]
    fn store_enforces_sequence_order_and_session_existence() {
        let store = EventsStore::new();
        let err = store.apply(&work("s", 3, vec![]), None).expect_err("unknown session");
        assert_eq!(err.0, 404);
        let (first, _) = store
            .apply(&work("s", 0, vec![OnlineEvent::Tick { now: 0.0 }]), Some(instance(7)))
            .expect("create");
        assert_eq!(first.version, 1);
        assert!(first.accounting.arrived > 0);
        let err = store.apply(&work("s", 5, vec![]), None).expect_err("out of order");
        assert_eq!(err.0, 400);
        assert!(err.1.contains("expected seq 1"), "{}", err.1);
        let (second, _) =
            store.apply(&work("s", 1, vec![OnlineEvent::Tick { now: 5.0 }]), None).expect("seq 1");
        assert_eq!(second.version, 2);
        assert_eq!(second.checksum.len(), 16);
    }

    #[test]
    fn store_seq_zero_resets_an_existing_session() {
        let store = EventsStore::new();
        let (a, _) = store
            .apply(&work("s", 0, vec![OnlineEvent::Tick { now: 0.0 }]), Some(instance(7)))
            .expect("create");
        store.apply(&work("s", 1, vec![OnlineEvent::Tick { now: 9.0 }]), None).expect("advance");
        let (b, _) = store
            .apply(&work("s", 0, vec![OnlineEvent::Tick { now: 0.0 }]), Some(instance(7)))
            .expect("reset");
        assert_eq!(a.checksum, b.checksum, "reset must reproduce the original world");
    }

    #[test]
    fn store_rejects_invalid_batches_without_advancing_seq() {
        let store = EventsStore::new();
        store.apply(&work("s", 0, vec![]), Some(instance(7))).expect("create");
        let err = store
            .apply(&work("s", 1, vec![OnlineEvent::WorkerDropped { worker: 999 }]), None)
            .expect_err("unknown worker");
        assert_eq!(err.0, 400);
        // The failed batch consumed no sequence number.
        let (ok, _) =
            store.apply(&work("s", 1, vec![OnlineEvent::Tick { now: 1.0 }]), None).expect("retry");
        assert_eq!(ok.seq, 1);
    }

    #[test]
    fn store_replay_reproduces_checksums() {
        let batches: Vec<Vec<OnlineEvent>> = vec![
            vec![OnlineEvent::Tick { now: 0.0 }],
            vec![
                OnlineEvent::Tick { now: 10.0 },
                OnlineEvent::TaskArrived {
                    loc: Point::new(150.0, 200.0),
                    window_start: 30.0,
                    window_end: 90.0,
                    service: 5.0,
                },
            ],
            vec![OnlineEvent::Tick { now: 25.0 }],
        ];
        let run = || {
            let store = EventsStore::new();
            let mut sums = Vec::new();
            for (i, b) in batches.iter().enumerate() {
                let inst = (i == 0).then(|| instance(7));
                let (resp, _) = store.apply(&work("s", i as u64, b.clone()), inst).expect("apply");
                sums.push(resp.checksum);
            }
            sums
        };
        assert_eq!(run(), run());
    }
}
