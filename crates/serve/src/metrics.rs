//! Lock-free serving metrics and their plain-text rendering.
//!
//! The repo's first observability surface: every counter is an atomic, so
//! the hot path pays a handful of relaxed fetch-adds per request, and
//! `GET /metrics` renders a Prometheus-style text snapshot (counter lines
//! with `{label="value"}` selectors, cumulative latency histogram buckets).
//!
//! Tracked per endpoint: request counts by status and a fixed-bucket
//! latency histogram (queue arrival → response written). Tracked globally:
//! shed count (503s written by the acceptor before a request is ever
//! parsed), queue depth plus its high-water mark, and the checkpoint
//! version.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// API endpoints as metric dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/solve`
    Solve,
    /// `POST /v1/feasible`
    Feasible,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /admin/reload`
    Reload,
    /// `POST /admin/shutdown`
    Shutdown,
    /// Anything else (404s, parse failures).
    Other,
}

/// All endpoints, in render order.
pub const ENDPOINTS: [Endpoint; 7] = [
    Endpoint::Solve,
    Endpoint::Feasible,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Reload,
    Endpoint::Shutdown,
    Endpoint::Other,
];

impl Endpoint {
    /// Stable label used in metric lines.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Solve => "solve",
            Endpoint::Feasible => "feasible",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Solve => 0,
            Endpoint::Feasible => 1,
            Endpoint::Healthz => 2,
            Endpoint::Metrics => 3,
            Endpoint::Reload => 4,
            Endpoint::Shutdown => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Statuses tracked as counter dimensions (a response with any other status
/// lands in the trailing `other` bucket).
const STATUSES: [u16; 9] = [200, 400, 404, 405, 409, 413, 431, 500, 503];

fn status_index(status: u16) -> usize {
    STATUSES.iter().position(|&s| s == status).unwrap_or(STATUSES.len())
}

/// Upper bucket bounds of the latency histogram, in milliseconds. The last
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_MS: [f64; 11] =
    [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

const N_ENDPOINTS: usize = ENDPOINTS.len();
const N_STATUS: usize = STATUSES.len() + 1;
const N_BUCKETS: usize = LATENCY_BUCKETS_MS.len() + 1;

#[derive(Debug, Default)]
struct EndpointMetrics {
    by_status: [AtomicU64; N_STATUS],
    latency_buckets: [AtomicU64; N_BUCKETS],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
}

/// The server-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointMetrics; N_ENDPOINTS],
    shed_total: AtomicU64,
    queue_depth: AtomicUsize,
    queue_high_water: AtomicUsize,
    model_version: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request: status counter + latency observation.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency_ms: f64) {
        let e = &self.endpoints[endpoint.index()];
        e.by_status[status_index(status)].fetch_add(1, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| latency_ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        e.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        e.latency_count.fetch_add(1, Ordering::Relaxed);
        e.latency_sum_us.fetch_add((latency_ms * 1000.0).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Records a request shed by the acceptor (queue full).
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Updates the live queue depth and its high-water mark.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The deepest the queue has ever been.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Publishes the current checkpoint version.
    pub fn set_model_version(&self, version: u64) {
        self.model_version.store(version, Ordering::Relaxed);
    }

    /// Requests recorded for `endpoint` with `status`.
    pub fn count(&self, endpoint: Endpoint, status: u16) -> u64 {
        self.endpoints[endpoint.index()].by_status[status_index(status)].load(Ordering::Relaxed)
    }

    /// Renders the plain-text snapshot served by `GET /metrics`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# smore-serve metrics (counters since process start)");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            let e = &self.endpoints[ei];
            for (si, status) in STATUSES.iter().enumerate() {
                let n = e.by_status[si].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "smore_requests_total{{endpoint=\"{}\",status=\"{status}\"}} {n}",
                        endpoint.label()
                    );
                }
            }
            let other = e.by_status[N_STATUS - 1].load(Ordering::Relaxed);
            if other > 0 {
                let _ = writeln!(
                    out,
                    "smore_requests_total{{endpoint=\"{}\",status=\"other\"}} {other}",
                    endpoint.label()
                );
            }
        }
        let _ = writeln!(out, "smore_shed_total {}", self.shed_total.load(Ordering::Relaxed));
        let _ = writeln!(out, "smore_queue_depth {}", self.queue_depth.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "smore_queue_depth_high_water {}",
            self.queue_high_water.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "smore_model_version {}", self.model_version.load(Ordering::Relaxed));
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            let e = &self.endpoints[ei];
            let count = e.latency_count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            // Cumulative buckets, Prometheus histogram convention.
            let mut cum = 0u64;
            for (bi, ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cum += e.latency_buckets[bi].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "smore_latency_ms_bucket{{endpoint=\"{}\",le=\"{ub}\"}} {cum}",
                    endpoint.label()
                );
            }
            let _ = writeln!(
                out,
                "smore_latency_ms_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {count}",
                endpoint.label()
            );
            let _ = writeln!(
                out,
                "smore_latency_ms_sum{{endpoint=\"{}\"}} {:.3}",
                endpoint.label(),
                e.latency_sum_us.load(Ordering::Relaxed) as f64 / 1000.0
            );
            let _ = writeln!(
                out,
                "smore_latency_ms_count{{endpoint=\"{}\"}} {count}",
                endpoint.label()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_endpoint_and_status() {
        let m = Metrics::new();
        m.record(Endpoint::Solve, 200, 3.0);
        m.record(Endpoint::Solve, 200, 7.0);
        m.record(Endpoint::Solve, 400, 0.2);
        m.record(Endpoint::Healthz, 200, 0.1);
        assert_eq!(m.count(Endpoint::Solve, 200), 2);
        assert_eq!(m.count(Endpoint::Solve, 400), 1);
        assert_eq!(m.count(Endpoint::Healthz, 200), 1);
        assert_eq!(m.count(Endpoint::Feasible, 200), 0);
    }

    #[test]
    fn render_contains_requests_shed_and_histogram_lines() {
        let m = Metrics::new();
        m.record(Endpoint::Solve, 200, 3.0);
        m.record_shed();
        m.set_queue_depth(5);
        m.set_queue_depth(2);
        m.set_model_version(3);
        let text = m.render();
        assert!(text.contains("smore_requests_total{endpoint=\"solve\",status=\"200\"} 1"));
        assert!(text.contains("smore_shed_total 1"));
        assert!(text.contains("smore_queue_depth 2"));
        assert!(text.contains("smore_queue_depth_high_water 5"));
        assert!(text.contains("smore_model_version 3"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"solve\",le=\"5\"} 1"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"solve\",le=\"+Inf\"} 1"));
        assert!(text.contains("smore_latency_ms_count{endpoint=\"solve\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Endpoint::Feasible, 200, 0.5); // le 1
        m.record(Endpoint::Feasible, 200, 30.0); // le 50
        m.record(Endpoint::Feasible, 200, 9999.0); // +Inf only
        let text = m.render();
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"1\"} 1"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"50\"} 2"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"2500\"} 2"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"+Inf\"} 3"));
    }

    #[test]
    fn unknown_statuses_fold_into_other() {
        let m = Metrics::new();
        m.record(Endpoint::Other, 418, 1.0);
        assert!(m.render().contains("smore_requests_total{endpoint=\"other\",status=\"other\"} 1"));
    }
}
