//! Lock-free serving metrics and their plain-text rendering.
//!
//! The repo's first observability surface: every counter is an atomic, so
//! the hot path pays a handful of relaxed fetch-adds per request, and
//! `GET /metrics` renders a Prometheus-style text snapshot (counter lines
//! with `{label="value"}` selectors, cumulative latency histogram buckets).
//!
//! Tracked per endpoint: request counts by status and a fixed-bucket
//! latency histogram (queue arrival → response written). Tracked globally:
//! shed count (503s written by the acceptor before a request is ever
//! parsed), queue depth plus its high-water mark, and the checkpoint
//! version.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// API endpoints as metric dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/solve`
    Solve,
    /// `POST /v1/feasible`
    Feasible,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /admin/reload`
    Reload,
    /// `POST /admin/shutdown`
    Shutdown,
    /// `POST /v1/events`
    Events,
    /// Anything else (404s, parse failures).
    Other,
}

/// All endpoints, in render order.
pub const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Solve,
    Endpoint::Feasible,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Reload,
    Endpoint::Shutdown,
    Endpoint::Events,
    Endpoint::Other,
];

impl Endpoint {
    /// Stable label used in metric lines.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Solve => "solve",
            Endpoint::Feasible => "feasible",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Events => "events",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Solve => 0,
            Endpoint::Feasible => 1,
            Endpoint::Healthz => 2,
            Endpoint::Metrics => 3,
            Endpoint::Reload => 4,
            Endpoint::Shutdown => 5,
            Endpoint::Events => 6,
            Endpoint::Other => 7,
        }
    }
}

/// Statuses tracked as counter dimensions (a response with any other status
/// lands in the trailing `other` bucket).
const STATUSES: [u16; 10] = [200, 400, 404, 405, 409, 413, 431, 500, 503, 504];

fn status_index(status: u16) -> usize {
    STATUSES.iter().position(|&s| s == status).unwrap_or(STATUSES.len())
}

/// Upper bucket bounds of the latency histogram, in milliseconds. The last
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_MS: [f64; 11] =
    [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

const N_ENDPOINTS: usize = ENDPOINTS.len();
const N_STATUS: usize = STATUSES.len() + 1;
const N_BUCKETS: usize = LATENCY_BUCKETS_MS.len() + 1;

#[derive(Debug, Default)]
struct EndpointMetrics {
    by_status: [AtomicU64; N_STATUS],
    latency_buckets: [AtomicU64; N_BUCKETS],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
}

/// Why the micro-batcher flushed a batch to the worker queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` items.
    Full,
    /// The oldest pending item aged past `max_delay_us`.
    Deadline,
}

impl FlushReason {
    /// Stable label used in the `smore_batch_flush_total` metric.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Deadline => "deadline",
        }
    }
}

/// Upper bucket bounds of the batch-size histogram (the last implicit
/// bucket is `+Inf`).
pub const BATCH_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

const N_BATCH_BUCKETS: usize = BATCH_BUCKETS.len() + 1;

/// Kinds of `/v1/events` stream events, as metric dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A sensing task arrived.
    TaskArrived,
    /// A task was cancelled by the requester.
    TaskCancelled,
    /// A worker reported route progress.
    WorkerProgress,
    /// A worker left the system.
    WorkerDropped,
    /// Simulated time advanced.
    Tick,
}

/// All event kinds, in render order.
pub const EVENT_KINDS: [EventKind; 5] = [
    EventKind::TaskArrived,
    EventKind::TaskCancelled,
    EventKind::WorkerProgress,
    EventKind::WorkerDropped,
    EventKind::Tick,
];

impl EventKind {
    /// The metric dimension of a wire event.
    pub fn of(event: &smore::OnlineEvent) -> Self {
        match event {
            smore::OnlineEvent::TaskArrived { .. } => EventKind::TaskArrived,
            smore::OnlineEvent::TaskCancelled { .. } => EventKind::TaskCancelled,
            smore::OnlineEvent::WorkerProgress { .. } => EventKind::WorkerProgress,
            smore::OnlineEvent::WorkerDropped { .. } => EventKind::WorkerDropped,
            smore::OnlineEvent::Tick { .. } => EventKind::Tick,
        }
    }

    /// Stable label used in the `smore_events_total` metric.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::TaskArrived => "task_arrived",
            EventKind::TaskCancelled => "task_cancelled",
            EventKind::WorkerProgress => "worker_progress",
            EventKind::WorkerDropped => "worker_dropped",
            EventKind::Tick => "tick",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::TaskArrived => 0,
            EventKind::TaskCancelled => 1,
            EventKind::WorkerProgress => 2,
            EventKind::WorkerDropped => 3,
            EventKind::Tick => 4,
        }
    }
}

const N_EVENT_KINDS: usize = EVENT_KINDS.len();

/// Smoothing factor of the latency EWMA feeding the adaptive `Retry-After`.
const EWMA_ALPHA: f64 = 0.2;

/// Ceiling on the advertised `Retry-After`, in seconds.
const RETRY_AFTER_MAX_SECS: u32 = 30;

/// The single source of truth for `/metrics` line names: every `smore_*`
/// metric emitted anywhere (render below, test assertions, DESIGN.md) must
/// appear here, and every name here must be emitted by [`Metrics::render`].
/// smore-lint's C3 rule enforces both directions workspace-wide, so a typo'd
/// name in code, tests or docs fails CI instead of silently breaking
/// dashboards.
pub const METRIC_NAMES: &[&str] = &[
    "smore_requests_total",
    "smore_shed_total",
    "smore_queue_depth",
    "smore_queue_depth_high_water",
    "smore_model_version",
    "smore_worker_panics_total",
    "smore_worker_respawns_total",
    "smore_watchdog_kills_total",
    "smore_worker_pool_size",
    "smore_degraded_total",
    "smore_breaker_state",
    "smore_breaker_trips_total",
    "smore_checkpoint_rejects_total",
    "smore_batch_flush_total",
    "smore_batch_size_bucket",
    "smore_batch_size_sum",
    "smore_batch_size_count",
    "smore_connections_accepted_total",
    "smore_connections_open",
    "smore_connections_busy",
    "smore_latency_ewma_ms",
    "smore_retry_after_secs",
    "smore_latency_ms_bucket",
    "smore_latency_ms_sum",
    "smore_latency_ms_count",
    "smore_events_total",
    "smore_events_rejected_total",
    "smore_replan_latency_ms_bucket",
    "smore_replan_latency_ms_sum",
    "smore_replan_latency_ms_count",
    "smore_replan_committed_prefix",
];

/// The server-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointMetrics; N_ENDPOINTS],
    shed_total: AtomicU64,
    queue_depth: AtomicUsize,
    queue_high_water: AtomicUsize,
    model_version: AtomicU64,
    // Fault-tolerance surface: supervisor, watchdog, breaker, degradation.
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    watchdog_kills: AtomicU64,
    pool_size: AtomicUsize,
    degraded_total: AtomicU64,
    breaker_state: AtomicU64,
    breaker_trips: AtomicU64,
    checkpoint_rejects: AtomicU64,
    // f64 bits of the request-latency EWMA (ms), updated per request.
    latency_ewma_ms_bits: AtomicU64,
    retry_after_secs: AtomicU64,
    // Event-loop surface: micro-batch admission and connection states.
    batch_buckets: [AtomicU64; N_BATCH_BUCKETS],
    batch_count: AtomicU64,
    batch_item_sum: AtomicU64,
    batch_flush_full: AtomicU64,
    batch_flush_deadline: AtomicU64,
    connections_accepted: AtomicU64,
    connections_open: AtomicUsize,
    connections_busy: AtomicUsize,
    // Online subsystem surface: /v1/events stream + suffix replanning.
    events_by_kind: [AtomicU64; N_EVENT_KINDS],
    events_rejected: AtomicU64,
    replan_buckets: [AtomicU64; N_BUCKETS],
    replan_count: AtomicU64,
    replan_sum_us: AtomicU64,
    replan_committed_prefix: AtomicUsize,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request: status counter + latency observation.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency_ms: f64) {
        let e = &self.endpoints[endpoint.index()];
        e.by_status[status_index(status)].fetch_add(1, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| latency_ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        e.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        e.latency_count.fetch_add(1, Ordering::Relaxed);
        e.latency_sum_us.fetch_add((latency_ms * 1000.0).max(0.0) as u64, Ordering::Relaxed);
        self.observe_latency_ewma(latency_ms);
    }

    /// Folds one latency observation into the EWMA (lock-free CAS loop).
    fn observe_latency_ewma(&self, latency_ms: f64) {
        let sample = latency_ms.max(0.0);
        let mut current = self.latency_ewma_ms_bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            // First observation seeds the average directly.
            // smore-lint: allow(N1): 0.0 is the exact never-written sentinel
            // (stores only ever hold a positive sample), not a computed value.
            let new = if old == 0.0 { sample } else { old + EWMA_ALPHA * (sample - old) };
            match self.latency_ewma_ms_bits.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current request-latency EWMA in milliseconds.
    pub fn latency_ewma_ms(&self) -> f64 {
        f64::from_bits(self.latency_ewma_ms_bits.load(Ordering::Relaxed))
    }

    /// Computes the `Retry-After` seconds to advertise on a shed response:
    /// the estimated time for `threads` workers to drain `queue_depth`
    /// requests at the recent EWMA latency, clamped to `[floor_secs, 30]`.
    /// The advertised value is also published as a `/metrics` gauge.
    pub fn adaptive_retry_after(&self, queue_depth: usize, threads: usize, floor_secs: u32) -> u32 {
        let drain_secs =
            queue_depth as f64 * self.latency_ewma_ms() / 1000.0 / threads.max(1) as f64;
        let secs = (drain_secs.ceil() as u64)
            .clamp(floor_secs.max(1) as u64, RETRY_AFTER_MAX_SECS as u64) as u32;
        self.retry_after_secs.store(secs as u64, Ordering::Relaxed);
        secs
    }

    /// Records a request handler panic contained by the supervisor.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Total contained worker panics.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Records a worker respawn after a panic exit.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Total worker respawns.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Records a request answered 504 by the watchdog (solver overran the
    /// hard deadline).
    pub fn record_watchdog_kill(&self) {
        self.watchdog_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Total watchdog-answered requests.
    pub fn watchdog_kills(&self) -> u64 {
        self.watchdog_kills.load(Ordering::Relaxed)
    }

    /// Publishes the live worker-pool size.
    pub fn set_pool_size(&self, size: usize) {
        self.pool_size.store(size, Ordering::Relaxed);
    }

    /// The live worker-pool size last published.
    pub fn pool_size(&self) -> usize {
        self.pool_size.load(Ordering::Relaxed)
    }

    /// Records a `/v1/solve` answered by the degraded fallback path.
    pub fn record_degraded(&self) {
        self.degraded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total degraded answers.
    pub fn degraded_total(&self) -> u64 {
        self.degraded_total.load(Ordering::Relaxed)
    }

    /// Publishes the breaker state gauge (0 closed, 1 half-open, 2 open).
    pub fn set_breaker_state(&self, gauge: u64) {
        self.breaker_state.store(gauge, Ordering::Relaxed);
    }

    /// Records one breaker trip (closed/half-open → open).
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint rejected at load time (bad checksum, bad
    /// params) — the previous model stayed live.
    pub fn record_checkpoint_reject(&self) {
        self.checkpoint_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one flushed micro-batch: its size lands in the
    /// `smore_batch_size` histogram, the reason in
    /// `smore_batch_flush_total{reason=...}`.
    pub fn record_batch_flush(&self, size: usize, reason: FlushReason) {
        let bucket =
            BATCH_BUCKETS.iter().position(|&ub| size as u64 <= ub).unwrap_or(BATCH_BUCKETS.len());
        self.batch_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.batch_count.fetch_add(1, Ordering::Relaxed);
        self.batch_item_sum.fetch_add(size as u64, Ordering::Relaxed);
        match reason {
            FlushReason::Full => self.batch_flush_full.fetch_add(1, Ordering::Relaxed),
            FlushReason::Deadline => self.batch_flush_deadline.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Total flushed batches (the batch-size histogram's count).
    pub fn batch_count(&self) -> u64 {
        self.batch_count.load(Ordering::Relaxed)
    }

    /// Flushes counted for `reason`.
    pub fn batch_flushes(&self, reason: FlushReason) -> u64 {
        match reason {
            FlushReason::Full => self.batch_flush_full.load(Ordering::Relaxed),
            FlushReason::Deadline => self.batch_flush_deadline.load(Ordering::Relaxed),
        }
    }

    /// Records one processed `/v1/events` stream event by kind.
    pub fn record_event(&self, kind: EventKind) {
        self.events_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Events recorded for `kind`.
    pub fn events_total(&self, kind: EventKind) -> u64 {
        self.events_by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// Records `n` tasks rejected (unaffordable) by a replan pass.
    pub fn record_events_rejected(&self, n: u64) {
        self.events_rejected.fetch_add(n, Ordering::Relaxed);
    }

    /// Total rejected tasks across all sessions.
    pub fn events_rejected_total(&self) -> u64 {
        self.events_rejected.load(Ordering::Relaxed)
    }

    /// Records one suffix-replan pass latency, in milliseconds.
    pub fn record_replan_latency(&self, latency_ms: f64) {
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| latency_ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.replan_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.replan_count.fetch_add(1, Ordering::Relaxed);
        self.replan_sum_us.fetch_add((latency_ms * 1000.0).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Total replan passes recorded.
    pub fn replan_count(&self) -> u64 {
        self.replan_count.load(Ordering::Relaxed)
    }

    /// Publishes the committed-prefix length gauge (total executed stops
    /// across the workers of the session that replanned last).
    pub fn set_committed_prefix(&self, len: usize) {
        self.replan_committed_prefix.store(len, Ordering::Relaxed);
    }

    /// Records one accepted connection.
    pub fn record_connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Total connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// Publishes the connection-state gauges: `open` registered
    /// connections, of which `busy` have at least one request in flight.
    pub fn set_connection_states(&self, open: usize, busy: usize) {
        self.connections_open.store(open, Ordering::Relaxed);
        self.connections_busy.store(busy, Ordering::Relaxed);
    }

    /// Currently open connections last published.
    pub fn connections_open(&self) -> usize {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Records a request shed by the acceptor (queue full).
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Updates the live queue depth and its high-water mark.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// The deepest the queue has ever been.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Publishes the current checkpoint version.
    pub fn set_model_version(&self, version: u64) {
        self.model_version.store(version, Ordering::Relaxed);
    }

    /// Requests recorded for `endpoint` with `status`.
    pub fn count(&self, endpoint: Endpoint, status: u16) -> u64 {
        self.endpoints[endpoint.index()].by_status[status_index(status)].load(Ordering::Relaxed)
    }

    /// Renders the plain-text snapshot served by `GET /metrics`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# smore-serve metrics (counters since process start)");
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            let e = &self.endpoints[ei];
            for (si, status) in STATUSES.iter().enumerate() {
                let n = e.by_status[si].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "smore_requests_total{{endpoint=\"{}\",status=\"{status}\"}} {n}",
                        endpoint.label()
                    );
                }
            }
            let other = e.by_status[N_STATUS - 1].load(Ordering::Relaxed);
            if other > 0 {
                let _ = writeln!(
                    out,
                    "smore_requests_total{{endpoint=\"{}\",status=\"other\"}} {other}",
                    endpoint.label()
                );
            }
        }
        let _ = writeln!(out, "smore_shed_total {}", self.shed_total.load(Ordering::Relaxed));
        let _ = writeln!(out, "smore_queue_depth {}", self.queue_depth.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "smore_queue_depth_high_water {}",
            self.queue_high_water.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "smore_model_version {}", self.model_version.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "smore_worker_panics_total {}",
            self.worker_panics.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_worker_respawns_total {}",
            self.worker_respawns.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_watchdog_kills_total {}",
            self.watchdog_kills.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "smore_worker_pool_size {}", self.pool_size.load(Ordering::Relaxed));
        let _ =
            writeln!(out, "smore_degraded_total {}", self.degraded_total.load(Ordering::Relaxed));
        let _ = writeln!(out, "smore_breaker_state {}", self.breaker_state.load(Ordering::Relaxed));
        let _ = writeln!(
            out,
            "smore_breaker_trips_total {}",
            self.breaker_trips.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_checkpoint_rejects_total {}",
            self.checkpoint_rejects.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_batch_flush_total{{reason=\"full\"}} {}",
            self.batch_flush_full.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_batch_flush_total{{reason=\"deadline\"}} {}",
            self.batch_flush_deadline.load(Ordering::Relaxed)
        );
        let batch_count = self.batch_count.load(Ordering::Relaxed);
        if batch_count > 0 {
            let mut cum = 0u64;
            for (bi, ub) in BATCH_BUCKETS.iter().enumerate() {
                cum += self.batch_buckets[bi].load(Ordering::Relaxed);
                let _ = writeln!(out, "smore_batch_size_bucket{{le=\"{ub}\"}} {cum}");
            }
            let _ = writeln!(out, "smore_batch_size_bucket{{le=\"+Inf\"}} {batch_count}");
            let _ = writeln!(
                out,
                "smore_batch_size_sum {}",
                self.batch_item_sum.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "smore_batch_size_count {batch_count}");
        }
        let _ = writeln!(
            out,
            "smore_connections_accepted_total {}",
            self.connections_accepted.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_connections_open {}",
            self.connections_open.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "smore_connections_busy {}",
            self.connections_busy.load(Ordering::Relaxed)
        );
        for kind in EVENT_KINDS {
            let _ = writeln!(
                out,
                "smore_events_total{{type=\"{}\"}} {}",
                kind.label(),
                self.events_by_kind[kind.index()].load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "smore_events_rejected_total {}",
            self.events_rejected.load(Ordering::Relaxed)
        );
        let replan_count = self.replan_count.load(Ordering::Relaxed);
        if replan_count > 0 {
            let mut cum = 0u64;
            for (bi, ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cum += self.replan_buckets[bi].load(Ordering::Relaxed);
                let _ = writeln!(out, "smore_replan_latency_ms_bucket{{le=\"{ub}\"}} {cum}");
            }
            let _ = writeln!(out, "smore_replan_latency_ms_bucket{{le=\"+Inf\"}} {replan_count}");
            let _ = writeln!(
                out,
                "smore_replan_latency_ms_sum {:.3}",
                self.replan_sum_us.load(Ordering::Relaxed) as f64 / 1000.0
            );
            let _ = writeln!(out, "smore_replan_latency_ms_count {replan_count}");
        }
        let _ = writeln!(
            out,
            "smore_replan_committed_prefix {}",
            self.replan_committed_prefix.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "smore_latency_ewma_ms {:.3}", self.latency_ewma_ms());
        let _ = writeln!(
            out,
            "smore_retry_after_secs {}",
            self.retry_after_secs.load(Ordering::Relaxed)
        );
        for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
            let e = &self.endpoints[ei];
            let count = e.latency_count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            // Cumulative buckets, Prometheus histogram convention.
            let mut cum = 0u64;
            for (bi, ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cum += e.latency_buckets[bi].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "smore_latency_ms_bucket{{endpoint=\"{}\",le=\"{ub}\"}} {cum}",
                    endpoint.label()
                );
            }
            let _ = writeln!(
                out,
                "smore_latency_ms_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {count}",
                endpoint.label()
            );
            let _ = writeln!(
                out,
                "smore_latency_ms_sum{{endpoint=\"{}\"}} {:.3}",
                endpoint.label(),
                e.latency_sum_us.load(Ordering::Relaxed) as f64 / 1000.0
            );
            let _ = writeln!(
                out,
                "smore_latency_ms_count{{endpoint=\"{}\"}} {count}",
                endpoint.label()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_endpoint_and_status() {
        let m = Metrics::new();
        m.record(Endpoint::Solve, 200, 3.0);
        m.record(Endpoint::Solve, 200, 7.0);
        m.record(Endpoint::Solve, 400, 0.2);
        m.record(Endpoint::Healthz, 200, 0.1);
        assert_eq!(m.count(Endpoint::Solve, 200), 2);
        assert_eq!(m.count(Endpoint::Solve, 400), 1);
        assert_eq!(m.count(Endpoint::Healthz, 200), 1);
        assert_eq!(m.count(Endpoint::Feasible, 200), 0);
    }

    #[test]
    fn render_contains_requests_shed_and_histogram_lines() {
        let m = Metrics::new();
        m.record(Endpoint::Solve, 200, 3.0);
        m.record_shed();
        m.set_queue_depth(5);
        m.set_queue_depth(2);
        m.set_model_version(3);
        let text = m.render();
        assert!(text.contains("smore_requests_total{endpoint=\"solve\",status=\"200\"} 1"));
        assert!(text.contains("smore_shed_total 1"));
        assert!(text.contains("smore_queue_depth 2"));
        assert!(text.contains("smore_queue_depth_high_water 5"));
        assert!(text.contains("smore_model_version 3"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"solve\",le=\"5\"} 1"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"solve\",le=\"+Inf\"} 1"));
        assert!(text.contains("smore_latency_ms_count{endpoint=\"solve\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Endpoint::Feasible, 200, 0.5); // le 1
        m.record(Endpoint::Feasible, 200, 30.0); // le 50
        m.record(Endpoint::Feasible, 200, 9999.0); // +Inf only
        let text = m.render();
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"1\"} 1"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"50\"} 2"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"2500\"} 2"));
        assert!(text.contains("smore_latency_ms_bucket{endpoint=\"feasible\",le=\"+Inf\"} 3"));
    }

    #[test]
    fn adaptive_retry_after_scales_with_queue_and_latency() {
        let m = Metrics::new();
        // No latency data yet: the floor wins.
        assert_eq!(m.adaptive_retry_after(10, 2, 1), 1);
        // Push the EWMA to ~1000ms: 10 queued / 2 workers ≈ 5s drain.
        for _ in 0..64 {
            m.record(Endpoint::Solve, 200, 1000.0);
        }
        let secs = m.adaptive_retry_after(10, 2, 1);
        assert!((4..=6).contains(&secs), "expected ~5s, got {secs}");
        // A huge backlog saturates at the 30s ceiling.
        assert_eq!(m.adaptive_retry_after(10_000, 1, 1), 30);
        // The floor is still honored when the queue is empty.
        assert_eq!(m.adaptive_retry_after(0, 2, 3), 3);
        let text = m.render();
        assert!(text.contains("smore_retry_after_secs 3"), "{text}");
        assert!(text.contains("smore_latency_ewma_ms"), "{text}");
    }

    #[test]
    fn fault_tolerance_counters_render() {
        let m = Metrics::new();
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_watchdog_kill();
        m.set_pool_size(4);
        m.record_degraded();
        m.set_breaker_state(2);
        m.record_breaker_trip();
        m.record_checkpoint_reject();
        m.record(Endpoint::Solve, 504, 100.0);
        let text = m.render();
        assert!(text.contains("smore_worker_panics_total 1"), "{text}");
        assert!(text.contains("smore_worker_respawns_total 1"), "{text}");
        assert!(text.contains("smore_watchdog_kills_total 1"), "{text}");
        assert!(text.contains("smore_worker_pool_size 4"), "{text}");
        assert!(text.contains("smore_degraded_total 1"), "{text}");
        assert!(text.contains("smore_breaker_state 2"), "{text}");
        assert!(text.contains("smore_breaker_trips_total 1"), "{text}");
        assert!(text.contains("smore_checkpoint_rejects_total 1"), "{text}");
        assert!(
            text.contains("smore_requests_total{endpoint=\"solve\",status=\"504\"} 1"),
            "504 must be a first-class status dimension: {text}"
        );
    }

    #[test]
    fn batcher_and_connection_metrics_render() {
        let m = Metrics::new();
        m.record_batch_flush(1, FlushReason::Deadline);
        m.record_batch_flush(8, FlushReason::Full);
        m.record_batch_flush(3, FlushReason::Full);
        m.record_connection_accepted();
        m.record_connection_accepted();
        m.set_connection_states(2, 1);
        assert_eq!(m.batch_count(), 3);
        assert_eq!(m.batch_flushes(FlushReason::Full), 2);
        assert_eq!(m.batch_flushes(FlushReason::Deadline), 1);
        let text = m.render();
        assert!(text.contains("smore_batch_flush_total{reason=\"full\"} 2"), "{text}");
        assert!(text.contains("smore_batch_flush_total{reason=\"deadline\"} 1"), "{text}");
        assert!(text.contains("smore_batch_size_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("smore_batch_size_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("smore_batch_size_bucket{le=\"8\"} 3"), "{text}");
        assert!(text.contains("smore_batch_size_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("smore_batch_size_sum 12"), "{text}");
        assert!(text.contains("smore_batch_size_count 3"), "{text}");
        assert!(text.contains("smore_connections_accepted_total 2"), "{text}");
        assert!(text.contains("smore_connections_open 2"), "{text}");
        assert!(text.contains("smore_connections_busy 1"), "{text}");
    }

    #[test]
    fn render_emits_exactly_the_registered_metric_names() {
        // Drive every code path so render() prints its full surface, then
        // check both directions against METRIC_NAMES: no line with an
        // undeclared name, no declared name missing from the output.
        let m = Metrics::new();
        m.record(Endpoint::Solve, 200, 3.0);
        m.record_shed();
        m.set_queue_depth(2);
        m.set_model_version(1);
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_watchdog_kill();
        m.set_pool_size(1);
        m.record_degraded();
        m.set_breaker_state(1);
        m.record_breaker_trip();
        m.record_checkpoint_reject();
        m.record_batch_flush(2, FlushReason::Full);
        m.record_connection_accepted();
        m.set_connection_states(1, 1);
        m.adaptive_retry_after(1, 1, 1);
        for kind in EVENT_KINDS {
            m.record_event(kind);
        }
        m.record_events_rejected(2);
        m.record_replan_latency(4.0);
        m.set_committed_prefix(3);
        let text = m.render();
        for line in text.lines().filter(|l| l.starts_with("smore_")) {
            let name: String = line
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            assert!(
                METRIC_NAMES.contains(&name.as_str()),
                "render() emits `{name}` which is not declared in METRIC_NAMES"
            );
        }
        for name in METRIC_NAMES {
            assert!(
                text.lines().any(|l| l.starts_with(name)),
                "METRIC_NAMES declares `{name}` but render() never emits it"
            );
        }
    }

    #[test]
    fn online_event_metrics_render() {
        let m = Metrics::new();
        m.record_event(EventKind::TaskArrived);
        m.record_event(EventKind::TaskArrived);
        m.record_event(EventKind::Tick);
        m.record_events_rejected(3);
        m.record_replan_latency(0.5);
        m.record_replan_latency(30.0);
        m.set_committed_prefix(7);
        assert_eq!(m.events_total(EventKind::TaskArrived), 2);
        assert_eq!(m.events_total(EventKind::WorkerDropped), 0);
        assert_eq!(m.events_rejected_total(), 3);
        assert_eq!(m.replan_count(), 2);
        let text = m.render();
        assert!(text.contains("smore_events_total{type=\"task_arrived\"} 2"), "{text}");
        assert!(text.contains("smore_events_total{type=\"tick\"} 1"), "{text}");
        assert!(text.contains("smore_events_rejected_total 3"), "{text}");
        assert!(text.contains("smore_replan_latency_ms_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("smore_replan_latency_ms_bucket{le=\"50\"} 2"), "{text}");
        assert!(text.contains("smore_replan_latency_ms_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("smore_replan_latency_ms_count 2"), "{text}");
        assert!(text.contains("smore_replan_committed_prefix 7"), "{text}");
    }

    #[test]
    fn unknown_statuses_fold_into_other() {
        let m = Metrics::new();
        m.record(Endpoint::Other, 418, 1.0);
        assert!(m.render().contains("smore_requests_total{endpoint=\"other\",status=\"other\"} 1"));
    }
}
