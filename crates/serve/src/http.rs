//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! The server speaks exactly the subset the API needs: `GET`/`POST`
//! requests with an optional `Content-Length` body, keep-alive and
//! pipelining per HTTP/1.1 defaults (a request carrying `Connection:
//! close` gets `Connection: close` on its response and ends the
//! connection). Parsing is defensive: header and body size caps, typed
//! errors, no panics. Two consumption styles share one parser:
//!
//! * [`read_request`] — blocking, one request from a stream (tests,
//!   simple clients);
//! * `parse_buffered` — incremental, over a connection's accumulated
//!   read buffer (the event loop's per-connection state machines).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request: method, path (query split off), query string, and
/// raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: Method,
    /// The path portion of the request target, e.g. `/v1/solve`.
    pub path: String,
    /// The query portion (without `?`), empty when absent.
    pub query: String,
    /// The request body (empty for bodyless requests).
    pub body: Vec<u8>,
    /// The client sent `Connection: close`: answer this request, then end
    /// the connection instead of keeping it alive.
    pub close: bool,
}

/// Request methods the API accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

/// Why a request could not be parsed, mapped onto a response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Socket error or client hangup mid-request.
    Io(String),
    /// The request line is not `METHOD TARGET HTTP/1.x`.
    BadRequestLine,
    /// The method is neither GET nor POST.
    UnsupportedMethod(String),
    /// The headers block exceeds [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` is missing on a request with a body, or unparsable.
    BadContentLength,
    /// The declared body length exceeds the server's cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's configured cap.
        cap: usize,
    },
}

impl ParseError {
    /// The HTTP status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Io(_) | ParseError::BadRequestLine | ParseError::BadContentLength => 400,
            ParseError::UnsupportedMethod(_) => 405,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge { .. } => 413,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "socket error: {e}"),
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BadContentLength => write!(f, "missing or malformed Content-Length"),
            ParseError::BodyTooLarge { declared, cap } => {
                write!(f, "declared body of {declared} bytes exceeds cap of {cap} bytes")
            }
        }
    }
}

/// Reads and parses one request from `stream`, enforcing `max_body_bytes`.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, ParseError> {
    // Accumulate until the blank line that ends the head.
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = stream.read(&mut buf).map_err(|e| ParseError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ParseError::Io("connection closed before request head".into()));
        }
        head.extend_from_slice(&buf[..n]);
    };

    let (request, content_length) = parse_head(&head[..head_end])?;
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge { declared: content_length, cap: max_body_bytes });
    }

    // Body bytes already read past the head, then the remainder.
    let mut body = head[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(|e| ParseError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ParseError::Io("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request { body, ..request })
}

/// Index of `\r\n\r\n` in `bytes`, if present.
pub(crate) fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One step of incremental parsing over a connection's read buffer.
#[derive(Debug)]
pub(crate) enum Parsed {
    /// A complete request; `consumed` bytes of the buffer belong to it.
    Complete {
        /// The parsed request.
        request: Box<Request>,
        /// Head + body length to drain from the front of the buffer.
        consumed: usize,
    },
    /// The buffer holds only part of a request head or body; read more.
    Partial {
        /// Total buffered bytes (head + declared body) this request needs
        /// before it can complete, once the head is parsed; `None` while
        /// the head itself is still incomplete. The event loop uses this
        /// to let a connection's read buffer grow past its default cap for
        /// bodies that are large but within `max_body_bytes`.
        needed: Option<usize>,
    },
    /// The buffer cannot be a valid request; answer and close.
    Invalid(ParseError),
}

/// Attempts to parse one request from the front of `buf` without blocking,
/// enforcing `max_body_bytes`. The caller drains `consumed` bytes on
/// [`Parsed::Complete`] and may call again for pipelined successors.
pub(crate) fn parse_buffered(buf: &[u8], max_body_bytes: usize) -> Parsed {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parsed::Invalid(ParseError::HeadTooLarge);
        }
        return Parsed::Partial { needed: None };
    };
    let (request, content_length) = match parse_head(&buf[..head_end]) {
        Ok(parsed) => parsed,
        Err(e) => return Parsed::Invalid(e),
    };
    if content_length > max_body_bytes {
        return Parsed::Invalid(ParseError::BodyTooLarge {
            declared: content_length,
            cap: max_body_bytes,
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parsed::Partial { needed: Some(body_start + content_length) };
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    Parsed::Complete {
        request: Box::new(Request { body, ..request }),
        consumed: body_start + content_length,
    }
}

/// Parses the request line + headers; returns the request (empty body) and
/// the declared content length.
fn parse_head(head: &[u8]) -> Result<(Request, usize), ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| ParseError::BadRequestLine)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method_raw = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequestLine);
    }
    let method = match method_raw {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(ParseError::UnsupportedMethod(other.to_string())),
    };

    let mut content_length = 0usize;
    let mut saw_content_length = false;
    let mut close = false;
    let mut keep_alive = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| ParseError::BadContentLength)?;
            saw_content_length = true;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.trim().eq_ignore_ascii_case("close") {
                close = true;
            } else if value.trim().eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    // HTTP/1.0 defaults to one request per connection: without an explicit
    // `Connection: keep-alive` the response must close, or a 1.0 client
    // waiting for close-delimited EOF hangs until the idle cull.
    if version == "HTTP/1.0" && !keep_alive {
        close = true;
    }
    // POST without Content-Length is treated as an empty body (the
    // query-string request form uses this); a GET never carries one.
    if method == Method::Get && saw_content_length && content_length > 0 {
        return Err(ParseError::BadContentLength);
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((Request { method, path, query, body: Vec::new(), close }, content_length))
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (set on 503 shedding).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response { status, content_type: "application/json", body: body.into(), retry_after: None }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    /// The canonical load-shedding response: `503` + `Retry-After`.
    pub fn shed(retry_after_secs: u32) -> Self {
        Response {
            status: 503,
            content_type: "application/json",
            body: b"{\"error\":\"server overloaded, request shed\"}".to_vec(),
            retry_after: Some(retry_after_secs),
        }
    }
}

/// The standard reason phrase for the statuses the API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Appends the serialized response to `out` (the event loop's
/// per-connection write buffer). `keep_alive` selects the `Connection:`
/// header; a `close` response is the last one on its connection.
pub fn encode_response(response: &Response, keep_alive: bool, out: &mut Vec<u8>) {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = response.retry_after {
        let _ = write!(head, "Retry-After: {secs}\r\n");
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&response.body);
}

/// Serializes and writes `response` to `stream` with `Connection: close`
/// (blocking one-shot path: tests and shed responses). Write errors are
/// returned (the caller counts them but cannot do anything else — the
/// client is gone).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(128 + response.body.len());
    encode_response(response, false, &mut bytes);
    stream.write_all(&bytes)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_of(s: &str) -> Result<(Request, usize), ParseError> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_request_line_path_and_query() {
        let (req, len) = head_of("POST /v1/solve?seed=7 HTTP/1.1\r\nContent-Length: 12").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.query, "seed=7");
        assert_eq!(len, 12);
        let (req, len) = head_of("GET /healthz HTTP/1.1\r\nHost: x").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.query, "");
        assert_eq!(len, 0);
    }

    #[test]
    fn rejects_garbage_and_unsupported_methods() {
        assert_eq!(head_of("nonsense").unwrap_err(), ParseError::BadRequestLine);
        assert_eq!(head_of("GET /x SPDY/9").unwrap_err(), ParseError::BadRequestLine);
        assert!(matches!(
            head_of("DELETE /x HTTP/1.1").unwrap_err(),
            ParseError::UnsupportedMethod(_)
        ));
        assert_eq!(
            head_of("POST /x HTTP/1.1\r\nContent-Length: banana").unwrap_err(),
            ParseError::BadContentLength
        );
    }

    #[test]
    fn statuses_map_sensibly() {
        assert_eq!(ParseError::BadRequestLine.status(), 400);
        assert_eq!(ParseError::UnsupportedMethod("PUT".into()).status(), 405);
        assert_eq!(ParseError::BodyTooLarge { declared: 9, cap: 1 }.status(), 413);
        assert_eq!(ParseError::HeadTooLarge.status(), 431);
    }

    #[test]
    fn every_emitted_status_has_a_reason() {
        for s in [200, 400, 404, 405, 409, 413, 431, 500, 503, 504] {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }

    #[test]
    fn connection_close_header_is_detected() {
        let (req, _) = head_of("GET /healthz HTTP/1.1\r\nConnection: close").unwrap();
        assert!(req.close);
        let (req, _) = head_of("GET /healthz HTTP/1.1\r\nConnection: keep-alive").unwrap();
        assert!(!req.close);
        let (req, _) = head_of("GET /healthz HTTP/1.1\r\nHost: t").unwrap();
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn http_1_0_defaults_to_close_unless_keep_alive_requested() {
        let (req, _) = head_of("GET /healthz HTTP/1.0\r\nHost: t").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to one request per connection");
        let (req, _) = head_of("GET /healthz HTTP/1.0\r\nConnection: keep-alive").unwrap();
        assert!(!req.close, "explicit keep-alive overrides the 1.0 default");
        let (req, _) = head_of("GET /healthz HTTP/1.0\r\nConnection: close").unwrap();
        assert!(req.close);
    }

    #[test]
    fn parse_buffered_handles_partial_pipelined_and_invalid_input() {
        let one = b"POST /v1/solve?seed=1 HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        // Every strict prefix is Partial, never an error. Once the head is
        // in, the hint reports how many bytes the full request needs.
        let head_len = one.len() - 2;
        for cut in 0..one.len() {
            match parse_buffered(&one[..cut], 1024) {
                Parsed::Partial { needed: None } => assert!(cut < head_len, "cut {cut}"),
                Parsed::Partial { needed: Some(n) } => {
                    assert!(cut >= head_len, "cut {cut}");
                    assert_eq!(n, one.len(), "cut {cut}");
                }
                other => panic!("cut {cut}: expected Partial, got {other:?}"),
            }
        }
        // Two pipelined requests parse in sequence, draining `consumed`.
        let mut buf = Vec::new();
        buf.extend_from_slice(one);
        buf.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let Parsed::Complete { request, consumed } = parse_buffered(&buf, 1024) else {
            panic!("first request must parse");
        };
        assert_eq!(request.path, "/v1/solve");
        assert_eq!(request.body, b"hi");
        assert_eq!(consumed, one.len());
        buf.drain(..consumed);
        let Parsed::Complete { request, consumed } = parse_buffered(&buf, 1024) else {
            panic!("second request must parse");
        };
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.method, Method::Get);
        buf.drain(..consumed);
        assert!(matches!(parse_buffered(&buf, 1024), Parsed::Partial { .. }), "empty buffer");
        // Oversized declared body and garbage are Invalid.
        assert!(matches!(
            parse_buffered(b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Parsed::Invalid(ParseError::BodyTooLarge { declared: 99, cap: 10 })
        ));
        assert!(matches!(
            parse_buffered(b"garbage\r\n\r\n", 1024),
            Parsed::Invalid(ParseError::BadRequestLine)
        ));
    }

    #[test]
    fn encode_response_sets_connection_header() {
        let resp = Response::json(200, "{}");
        let mut keep = Vec::new();
        encode_response(&resp, true, &mut keep);
        let keep = String::from_utf8(keep).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        assert!(keep.ends_with("\r\n\r\n{}"), "{keep}");
        let mut close = Vec::new();
        encode_response(&Response::shed(3), false, &mut close);
        let close = String::from_utf8(close).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(close.contains("Retry-After: 3\r\n"), "{close}");
    }
}
