//! Per-model-version circuit breaker for the `/v1/solve` model path.
//!
//! Consecutive model failures (failed TASNet episodes, watchdog-killed
//! solves) trip the breaker **open**: further model-path requests are
//! answered by the baseline fallback chain immediately, marked
//! `"degraded": true`, instead of burning a worker on a model that is
//! demonstrably broken. After a fixed number of degraded answers the
//! breaker goes **half-open** and lets probe requests through to the real
//! model; one success closes it, one failure re-opens it.
//!
//! The state machine is deliberately clock-free — cooldown is counted in
//! *requests*, not seconds — so breaker behavior is a deterministic
//! function of the request/outcome sequence (the same property the rest of
//! the serving stack maintains). A checkpoint reload resets the breaker:
//! the new model version earns its own verdict.

use std::sync::Mutex;

/// Breaker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive model failures that trip the breaker open.
    pub failure_threshold: usize,
    /// Degraded answers served while open before a half-open probe is let
    /// through to the model again.
    pub open_requests_before_probe: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, open_requests_before_probe: 8 }
    }
}

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Model path healthy; every request goes to the model.
    Closed,
    /// Model path disabled; requests are served degraded.
    Open,
    /// Probing: requests go to the model, one verdict decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable gauge encoding for `/metrics` (0 closed, 1 half-open, 2 open).
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// What the breaker decided for one incoming model-path request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: use the model normally.
    Normal,
    /// Breaker half-open: use the model; this request's outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Breaker open: skip the model, serve the baseline fallback.
    Degraded,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: usize,
    degraded_since_open: usize,
    model_version: u64,
    trips: u64,
}

/// The breaker itself. One per server; internally keyed by model version
/// (a reload resets the state machine for the fresh version).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                degraded_since_open: 0,
                model_version: 0,
                trips: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this mutex cannot leave partial state (every
        // transition is a handful of integer stores), so poisoning is
        // recovered rather than propagated.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits one model-path request against `model_version`, advancing the
    /// open→half-open cooldown when applicable.
    pub fn admit(&self, model_version: u64) -> Admission {
        let mut inner = self.lock();
        inner.reset_if_new_version(model_version);
        match inner.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                inner.degraded_since_open += 1;
                if inner.degraded_since_open >= self.config.open_requests_before_probe {
                    inner.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Degraded
                }
            }
        }
    }

    /// Records a successful model answer: failures reset; a half-open
    /// breaker closes.
    pub fn on_success(&self, model_version: u64) {
        let mut inner = self.lock();
        inner.reset_if_new_version(model_version);
        inner.consecutive_failures = 0;
        inner.degraded_since_open = 0;
        inner.state = BreakerState::Closed;
    }

    /// Records a failed model answer. Returns `true` when this failure
    /// tripped the breaker open (for logging/metrics at the call site).
    pub fn on_failure(&self, model_version: u64) -> bool {
        let mut inner = self.lock();
        inner.reset_if_new_version(model_version);
        inner.consecutive_failures += 1;
        let should_open = match inner.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if should_open {
            inner.state = BreakerState::Open;
            inner.degraded_since_open = 0;
            inner.trips += 1;
        }
        should_open
    }

    /// Current state (for `/metrics` and tests).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// How many times the breaker has tripped open since construction.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }
}

impl Inner {
    fn reset_if_new_version(&mut self, model_version: u64) {
        if self.model_version != model_version {
            self.model_version = model_version;
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
            self.degraded_since_open = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { failure_threshold: 3, open_requests_before_probe: 2 })
    }

    #[test]
    fn stays_closed_below_the_failure_threshold() {
        let b = breaker();
        for _ in 0..2 {
            assert!(!b.on_failure(1));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(1), Admission::Normal);
        // A success resets the streak: two more failures still don't trip.
        b.on_success(1);
        assert!(!b.on_failure(1));
        assert!(!b.on_failure(1));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_then_cools_down_to_a_probe() {
        let b = breaker();
        b.on_failure(1);
        b.on_failure(1);
        assert!(b.on_failure(1), "third consecutive failure must trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Cooldown counted in requests: first degraded, second is a probe.
        assert_eq!(b.admit(1), Admission::Degraded);
        assert_eq!(b.admit(1), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let b = breaker();
        for _ in 0..3 {
            b.on_failure(1);
        }
        for _ in 0..2 {
            b.admit(1);
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_failure(1), "failed probe re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        for _ in 0..2 {
            b.admit(1);
        }
        b.on_success(1);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(1), Admission::Normal);
    }

    #[test]
    fn reload_resets_the_breaker_for_the_new_version() {
        let b = breaker();
        for _ in 0..3 {
            b.on_failure(1);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Version 2 arrives (checkpoint reload): fresh verdict.
        assert_eq!(b.admit(2), Admission::Normal);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.gauge(), 0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1);
        assert_eq!(BreakerState::Open.gauge(), 2);
    }
}
