//! Bounded MPMC work queue with backpressure and graceful drain.
//!
//! The acceptor thread pushes accepted connections; worker threads pop.
//! `try_push` on a full queue fails immediately — the acceptor turns that
//! into a `503 + Retry-After` shed response instead of letting latency grow
//! without bound. On shutdown the queue stops accepting, wakes every
//! blocked worker, and keeps handing out the items already queued until
//! empty, so accepted requests are always answered.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item is handed back for shedding.
    Full,
    /// The queue is shutting down and accepts no new work.
    ShuttingDown,
}

/// A refused push. The item comes back for shedding, together with the
/// queue depth observed under the same lock acquisition — so shed paths
/// size their `Retry-After` without re-locking the queue (the event loop
/// must not take the mutex twice per shed; smore-lint's C2 rule polices
/// the loop for exactly this kind of avoidable blocking).
#[derive(Debug)]
pub struct Refused<T> {
    /// The item that did not fit, handed back to the caller.
    pub item: T,
    /// Why it was refused.
    pub reason: PushError,
    /// Queue depth at refusal time.
    pub depth: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// A bounded FIFO queue of pending work.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` if there is room. On failure the item comes back to
    /// the caller (for shedding) as a [`Refused`] carrying the reason and
    /// the depth seen under the lock. On success the returned depth is the
    /// queue length including the new item — callers feed it to the
    /// metrics high-water mark.
    pub fn try_push(&self, item: T) -> Result<usize, Refused<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.shutdown {
            let depth = inner.items.len();
            return Err(Refused { item, reason: PushError::ShuttingDown, depth });
        }
        if inner.items.len() >= self.capacity {
            let depth = inner.items.len();
            return Err(Refused { item, reason: PushError::Full, depth });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or shutdown + drained. `None`
    /// means "no more work, ever" — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Puts `item` back at the *front* of the queue, ignoring capacity and
    /// the shutdown flag. This is the re-admission path for work that was
    /// already accepted once: a panicking worker hands its unfinished job
    /// items back before exiting, and they must neither be shed (the
    /// client was never told 503) nor dropped during a shutdown drain.
    pub fn requeue(&self, item: T) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.items.push_front(item);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Flips the shutdown flag and wakes every blocked worker. Items
    /// already queued are still drained by subsequent `pop` calls.
    pub fn shut_down(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.shutdown = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1).expect("push"), 1);
        assert_eq!(q.try_push(2).expect("push"), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").expect("push");
        q.try_push("b").expect("push");
        match q.try_push("c") {
            Err(Refused { item, reason: PushError::Full, depth }) => {
                assert_eq!(item, "c");
                assert_eq!(depth, 2, "refusal must report the depth seen under the lock");
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_queued_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("push");
        q.shut_down();
        assert!(matches!(q.try_push(2), Err(Refused { reason: PushError::ShuttingDown, .. })));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn requeue_jumps_the_line_and_ignores_capacity_and_shutdown() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("push");
        q.try_push(2).expect("push");
        // Full queue: requeue still lands, at the front.
        q.requeue(0);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some(0));
        // Shutdown drain: requeued items are still handed out.
        q.shut_down();
        q.requeue(9);
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_shutdown() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then shut down.
        thread::sleep(std::time::Duration::from_millis(20));
        q.shut_down();
        for h in handles {
            assert_eq!(h.join().expect("join"), None);
        }
    }

    #[test]
    fn poisoned_queue_lock_is_recovered_not_propagated() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).expect("push");
        let poisoner = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let _guard = q.inner.lock().unwrap_or_else(|e| e.into_inner());
                // Deliberate poison: panic while holding the lock.
                panic!("poisoning the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(q.inner.is_poisoned(), "lock must actually be poisoned");
        // Every operation keeps working after the holder panicked.
        assert_eq!(q.depth(), 1);
        assert_eq!(q.try_push(2).expect("push after poison"), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.shut_down();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut pushed = 0u32;
                    for i in 0..100u32 {
                        if q.try_push(p * 1000 + i).is_ok() {
                            pushed += 1;
                        } else {
                            thread::yield_now();
                        }
                    }
                    pushed
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0u32;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let pushed: u32 = producers.into_iter().map(|h| h.join().expect("join")).sum();
        q.shut_down();
        let got: u32 = consumers.into_iter().map(|h| h.join().expect("join")).sum();
        assert_eq!(pushed, got);
    }
}
