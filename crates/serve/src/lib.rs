//! `smore-serve` — the online USMDW assignment service.
//!
//! Turns the batch SMORE solver into a long-running network service with
//! explicit overload behavior:
//!
//! * [`http`] — minimal HTTP/1.1 framing over `std::net` (no external
//!   dependencies): GET/POST, size caps, typed parse errors, keep-alive
//!   and pipelining via incremental buffer parsing.
//! * `poller` (private) — the readiness layer: nonblocking sockets in a
//!   generation-guarded slab, swept with adaptive per-connection backoff;
//!   per-connection state machines enforce pipeline response order.
//! * `batcher` (private) — micro-batch admission: solver-bound requests
//!   coalesce into one queue handoff, flushed at `max_batch` items or
//!   `max_delay_us` age, whichever first.
//! * [`queue`] — a bounded MPMC queue between the event loop and the
//!   worker pool; a full queue sheds with `503 + Retry-After` instead of
//!   growing latency without bound, and shutdown drains every admitted
//!   request.
//! * [`registry`] — TASNet checkpoints behind `Arc`, hot-swapped by
//!   `POST /admin/reload` without dropping in-flight requests.
//! * [`api`] — routing + handlers, split into a cheap `plan` step (run on
//!   the event loop: routing, validation, admission) and an `execute` step
//!   (run on workers): `POST /v1/solve` (full instance or seeded generator
//!   spec, per-request deadline budgets), `POST /v1/feasible` (single
//!   candidate probe through the incremental evaluator), `GET /healthz`,
//!   `GET /metrics`, and the admin endpoints.
//! * [`events`] — the `POST /v1/events` online subsystem: a hand-rolled,
//!   depth-capped envelope parser (run at plan time on the event loop —
//!   pure CPU, C2-safe) plus a per-session store of versioned
//!   [`smore::OnlineWorld`]s advanced strictly in sequence order, with
//!   mid-route suffix replanning on every applied batch.
//! * [`metrics`] — atomic counters (requests by endpoint/status, shed
//!   count, queue high-water mark, batch-size histogram, flush reasons,
//!   connection-state gauges) and latency histograms, rendered as plain
//!   text.
//! * [`server`] — a single readiness event loop owning every socket +
//!   the supervised worker pool, each worker owning one
//!   [`smore::SolveSession`]; graceful drain on shutdown.
//! * [`supervisor`] — fault tolerance for the pool: per-job panic
//!   containment (`catch_unwind` + session quarantine + respawn + requeue
//!   of innocent batchmates) and a watchdog answering a structured 504
//!   when a solver wedges past the hard deadline.
//! * [`breaker`] — a per-model-version circuit breaker; consecutive model
//!   failures flip `/v1/solve` onto the baseline fallback (marked
//!   `"degraded": true`) until a half-open probe succeeds.
//!
//! Handlers are deterministic in the request bytes and the loaded
//! checkpoint: identical requests produce byte-identical response bodies
//! regardless of thread-pool size, request interleaving, or micro-batch
//! placement (model forwards always go through the batch path, so a
//! singleton and a batch row compute identically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod batcher;
pub mod breaker;
pub mod events;
pub mod http;
pub mod metrics;
mod poller;
pub mod queue;
pub mod registry;
pub mod server;
pub mod supervisor;

pub use api::{endpoint_of, error_response, Api};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use events::EventsStore;
pub use http::{Method, ParseError, Request, Response};
pub use metrics::{Endpoint, FlushReason, Metrics, BATCH_BUCKETS};
pub use queue::{BoundedQueue, PushError, Refused};
pub use registry::{build_model, LoadedModel, ModelRegistry, RegistryError};
pub use server::{start, ServeConfig, ServerHandle};
