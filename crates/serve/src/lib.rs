//! `smore-serve` — the online USMDW assignment service.
//!
//! Turns the batch SMORE solver into a long-running network service with
//! explicit overload behavior:
//!
//! * [`http`] — minimal HTTP/1.1 framing over `std::net` (no external
//!   dependencies): GET/POST, size caps, typed parse errors, one request
//!   per connection.
//! * [`queue`] — a bounded MPMC queue between the acceptor and the worker
//!   pool; a full queue sheds with `503 + Retry-After` instead of growing
//!   latency without bound, and shutdown drains every accepted request.
//! * [`registry`] — TASNet checkpoints behind `Arc`, hot-swapped by
//!   `POST /admin/reload` without dropping in-flight requests.
//! * [`api`] — routing + handlers: `POST /v1/solve` (full instance or
//!   seeded generator spec, per-request deadline budgets), `POST
//!   /v1/feasible` (single candidate probe through the incremental
//!   evaluator), `GET /healthz`, `GET /metrics`, and the admin endpoints.
//! * [`metrics`] — atomic counters (requests by endpoint/status, shed
//!   count, queue high-water mark) and latency histograms, rendered as
//!   plain text.
//! * [`server`] — the acceptor thread + supervised worker pool, each
//!   worker owning one [`smore::SolveSession`]; graceful shutdown.
//! * [`supervisor`] — fault tolerance for the pool: per-request panic
//!   containment (`catch_unwind` + session quarantine + respawn) and a
//!   watchdog answering a structured 504 when a solver wedges past the
//!   hard deadline.
//! * [`breaker`] — a per-model-version circuit breaker; consecutive model
//!   failures flip `/v1/solve` onto the baseline fallback (marked
//!   `"degraded": true`) until a half-open probe succeeds.
//!
//! Handlers are deterministic in the request bytes and the loaded
//! checkpoint: identical requests produce byte-identical response bodies
//! regardless of thread-pool size or request interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod breaker;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod server;
pub mod supervisor;

pub use api::{endpoint_of, error_response, Api};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use http::{Method, ParseError, Request, Response};
pub use metrics::{Endpoint, Metrics};
pub use queue::{BoundedQueue, PushError};
pub use registry::{build_model, LoadedModel, ModelRegistry, RegistryError};
pub use server::{start, ServeConfig, ServerHandle};
