//! The server proper: a single readiness event loop over nonblocking
//! sockets, micro-batch admission, and the supervised worker pool.
//!
//! One thread owns *every* socket. Each loop iteration it: accepts a burst
//! of new connections (nonblocking listener), drains finished
//! `Completion`s from the workers onto their owning connections, sweeps
//! due connections for readable bytes, parses as many pipelined requests
//! as each connection has buffered, plans them (`Api::plan`), answers
//! the cheap ones inline (health, metrics, admin, every 4xx), admits
//! solver-bound work to the `Batcher`, dispatches full or overdue
//! batches onto the bounded queue as one `Job`, flushes pending response
//! bytes, and finally sleeps — blocking on the completions channel with a
//! short timeout, so a finishing worker wakes it instantly.
//!
//! Backpressure is unchanged in spirit from the thread-per-connection
//! design but now sheds *requests*, not connections: a full queue answers
//! each item of the rejected batch with `503 + Retry-After` on its own
//! connection, which stays open for the retry. Latency is measured
//! parse-complete → response written, so the histogram includes queue wait
//! and batch delay.
//!
//! Shutdown (via [`ServerHandle::stop`] or `POST /admin/shutdown`) drops
//! the listener, flushes the batcher, shuts the queue down, and drains:
//! every admitted request is still answered, then all connections are
//! flushed and closed and the loop exits.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smore_tsptw::FaultConfig;

use crate::api::{endpoint_of, error_response, Api, Plan};
use crate::batcher::Batcher;
use crate::breaker::CircuitBreaker;
use crate::http::{encode_response, parse_buffered, Parsed, Response};
use crate::metrics::{Endpoint, FlushReason, Metrics};
use crate::poller::{ConnToken, ReadOutcome, SweepPoller};
use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use crate::supervisor::{start_supervised_pool, Completion, Job, JobItem};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one `SolveSession`).
    pub threads: usize,
    /// Bounded queue capacity in *jobs* (micro-batches); work beyond it is
    /// shed with 503 per request.
    pub queue_capacity: usize,
    /// Per-request body size cap in bytes.
    pub max_body_bytes: usize,
    /// Cull window: a connection with no traffic and nothing in flight for
    /// this long is closed, as is one whose buffered response bytes the
    /// peer has refused to accept for this long (bounds slow-loris clients
    /// on both the read and the write side).
    pub read_timeout: Duration,
    /// Floor for the adaptive `Retry-After` advertised on shed responses.
    pub retry_after_secs: u32,
    /// Watchdog limit: a request still unanswered past this gets a 504
    /// from the watchdog even if the solver is wedged.
    pub hard_deadline: Duration,
    /// Micro-batch admission: flush a batch at this many requests.
    pub max_batch: usize,
    /// Micro-batch admission: flush a non-full batch once its oldest
    /// request has waited this many microseconds.
    pub max_delay_us: u64,
    /// Hard cap on concurrently open connections; the accept burst pauses
    /// at the cap and resumes as connections close.
    pub max_connections: usize,
    /// Server-side chaos: inject solver faults into every worker session.
    /// `None` (the default) serves faultlessly.
    pub faults: Option<FaultConfig>,
    /// Seed for the fault-injection schedule. One shared seed keeps the
    /// schedule a pure function of the problem, preserving byte-identical
    /// responses across workers.
    pub fault_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_capacity: 64,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            hard_deadline: Duration::from_secs(30),
            max_batch: 8,
            max_delay_us: 500,
            max_connections: 8192,
            faults: None,
            fault_seed: 0,
        }
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    event_loop: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics (shared with the worker threads).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The server's model registry.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// True once shutdown has been requested (by [`ServerHandle::stop`] or
    /// `POST /admin/shutdown`).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without waiting.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the event loop and every worker have exited (all
    /// admitted requests answered). Call [`ServerHandle::stop`] first, or
    /// let a `POST /admin/shutdown` trigger it remotely.
    pub fn join(mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// Connections accepted per loop iteration before yielding to the sweep.
const ACCEPT_BURST: usize = 128;

/// Cap on requests parsed-but-unanswered per connection; a client
/// pipelining deeper than this is paused (not read) until answers drain.
const MAX_PIPELINE: usize = 32;

/// Idle-iteration sleep bound (the completions channel wakes the loop
/// early whenever a worker finishes).
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Cadence of idle culls and connection-state gauge refreshes.
const HOUSEKEEPING_EVERY: Duration = Duration::from_millis(100);

/// Bound on the final drain flush at shutdown: after this, unread response
/// bytes belong to clients that stopped reading.
const DRAIN_FLUSH_LIMIT: Duration = Duration::from_secs(1);

/// One parse step's outcome, extracted under the connection borrow so the
/// follow-up (plan, admit, dispatch) can re-borrow the event loop freely.
enum ParseStep {
    Request { request: Box<crate::http::Request>, seq: u64 },
    Error { seq: u64, status: u16, message: String },
    Done,
}

struct EventLoop {
    listener: Option<TcpListener>,
    poller: SweepPoller,
    batcher: Batcher<JobItem>,
    queue: Arc<BoundedQueue<Job>>,
    completions: Receiver<Completion>,
    api: Arc<Api>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
    /// Requests admitted to the queue and not yet answered by a
    /// completion; drain waits for zero.
    outstanding: usize,
    draining: bool,
    last_housekeeping: Instant,
    /// Anything happened this iteration → skip the sleep.
    activity: bool,
}

impl EventLoop {
    fn run(mut self) {
        loop {
            let now = Instant::now();
            self.activity = false;

            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                // Begin drain: refuse new connections, flush the pending
                // batch, stop admitting, answer everything in flight.
                self.listener = None;
                if let Some((batch, reason)) = self.batcher.flush(FlushReason::Deadline) {
                    self.dispatch(batch, reason);
                }
                // smore-lint: allow(C2): shutdown one-shot — flips a flag
                // and notifies under a lock nothing holds for long; runs
                // once per process lifetime, never on the request path.
                self.queue.shut_down();
                self.draining = true;
            }

            self.accept_burst(now);
            while let Ok(completion) = self.completions.try_recv() {
                self.deliver(completion);
            }
            if !self.draining {
                self.sweep_and_parse(now);
                if self.batcher.due(now) {
                    if let Some((batch, reason)) = self.batcher.flush(FlushReason::Deadline) {
                        self.dispatch(batch, reason);
                    }
                }
            }
            self.flush_connections(now);

            if now.duration_since(self.last_housekeeping) >= HOUSEKEEPING_EVERY {
                self.housekeeping(now);
                self.last_housekeeping = now;
            }

            if self.draining && self.outstanding == 0 && self.batcher.pending_len() == 0 {
                self.finish_drain();
                return;
            }

            if !self.activity {
                let mut wait = IDLE_SLEEP;
                if let Some(due_in) = self.batcher.due_in(now) {
                    wait = wait.min(due_in);
                }
                match self.completions.recv_timeout(wait.max(Duration::from_micros(50))) {
                    Ok(completion) => self.deliver(completion),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
    }

    fn accept_burst(&mut self, now: Instant) {
        let Some(listener) = self.listener.as_ref() else { return };
        for _ in 0..ACCEPT_BURST {
            if self.poller.open_count() >= self.config.max_connections {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    // Responses are single buffered writes; Nagle only adds
                    // latency here.
                    let _ = stream.set_nodelay(true);
                    self.metrics.record_connection_accepted();
                    self.poller.register(stream, now);
                    self.activity = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept failure (e.g. aborted handshake).
                Err(_) => return,
            }
        }
    }

    /// Routes one worker/watchdog completion onto its connection.
    fn deliver(&mut self, completion: Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.respond(
            completion.conn,
            completion.seq,
            completion.endpoint,
            completion.arrival,
            completion.response,
            completion.close_conn,
        );
    }

    /// Records and enqueues one response onto its connection's write
    /// buffer (in pipeline order). The single recording point for every
    /// answered request, inline or via workers.
    fn respond(
        &mut self,
        token: ConnToken,
        seq: u64,
        endpoint: Endpoint,
        arrival: Instant,
        response: Response,
        close_conn: bool,
    ) {
        self.metrics.record(endpoint, response.status, arrival.elapsed().as_secs_f64() * 1000.0);
        if let Some(conn) = self.poller.get_mut(token) {
            if close_conn {
                conn.close_after(seq);
            }
            let mut encoded = Vec::new();
            encode_response(&response, !conn.closing_at(seq), &mut encoded);
            conn.complete(seq, encoded);
        }
        self.activity = true;
    }

    fn sweep_and_parse(&mut self, now: Instant) {
        for i in 0..self.poller.slot_count() {
            let Some(token) = self.poller.token_at(i) else { continue };
            let (outcome, parse_worthy) = {
                let Some(conn) = self.poller.get_mut(token) else { continue };
                let outcome = if conn.read_due(now) && conn.in_flight < MAX_PIPELINE {
                    conn.sweep_read(now)
                } else {
                    ReadOutcome::Idle
                };
                (outcome, !conn.read_buf.is_empty() && conn.accepting_requests())
            };
            match outcome {
                ReadOutcome::Dead => {
                    self.poller.close(token);
                    continue;
                }
                ReadOutcome::Data => self.activity = true,
                ReadOutcome::Eof | ReadOutcome::Idle => {}
            }
            if parse_worthy {
                self.parse_connection(token, now);
            }
        }
    }

    /// Parses every complete pipelined request buffered on one connection
    /// and plans each: inline answers for cheap endpoints, batcher
    /// admission for solver-bound work.
    fn parse_connection(&mut self, token: ConnToken, now: Instant) {
        loop {
            let step = {
                let Some(conn) = self.poller.get_mut(token) else { return };
                if !conn.accepting_requests()
                    || conn.in_flight >= MAX_PIPELINE
                    || conn.read_buf.is_empty()
                {
                    ParseStep::Done
                } else {
                    match parse_buffered(&conn.read_buf, self.config.max_body_bytes) {
                        Parsed::Partial { needed } => {
                            if conn.peer_closed {
                                // The peer hung up mid-request; answer the
                                // torso with a 400 like the blocking
                                // reader did, then close.
                                let seq = conn.assign_seq();
                                conn.close_after(seq);
                                conn.read_buf.clear();
                                ParseStep::Error {
                                    seq,
                                    status: 400,
                                    message: "connection closed mid-request".to_string(),
                                }
                            } else {
                                // A declared body larger than the default
                                // read-ahead cap (already bounded by
                                // max_body_bytes at parse time) must be
                                // allowed to finish arriving.
                                if let Some(needed) = needed {
                                    conn.raise_read_cap(needed, now);
                                }
                                ParseStep::Done
                            }
                        }
                        Parsed::Invalid(parse_err) => {
                            let seq = conn.assign_seq();
                            conn.close_after(seq);
                            conn.read_buf.clear();
                            ParseStep::Error {
                                seq,
                                status: parse_err.status(),
                                message: parse_err.to_string(),
                            }
                        }
                        Parsed::Complete { request, consumed } => {
                            conn.read_buf.drain(..consumed);
                            conn.reset_read_cap();
                            let seq = conn.assign_seq();
                            if request.close {
                                conn.close_after(seq);
                            }
                            ParseStep::Request { request, seq }
                        }
                    }
                }
            };
            match step {
                ParseStep::Done => return,
                ParseStep::Error { seq, status, message } => {
                    self.respond(
                        token,
                        seq,
                        Endpoint::Other,
                        now,
                        error_response(status, message),
                        true,
                    );
                    return;
                }
                ParseStep::Request { request, seq } => {
                    self.activity = true;
                    let endpoint = endpoint_of(&request.path);
                    // smore-lint: allow(C2): plan() only snapshots the
                    // registry (RwLock read of an Arc clone) and polls the
                    // breaker (Mutex over two ints); both critical sections
                    // are O(1) pointer/integer work with no I/O, and the
                    // writers (reload thread, breaker updates) hold them
                    // equally briefly. Solver work itself goes through the
                    // queue to the workers, never inline here.
                    match self.api.plan(&request) {
                        Plan::Ready(response) => {
                            self.respond(token, seq, endpoint, now, response, false)
                        }
                        Plan::Work(item) => {
                            let job_item = JobItem {
                                conn: token,
                                seq,
                                arrival: now,
                                work: *item,
                                retried: false,
                            };
                            if let Some((batch, reason)) = self.batcher.admit(job_item, now) {
                                self.dispatch(batch, reason);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Hands one flushed micro-batch to the worker queue, or sheds each of
    /// its requests with `503 + Retry-After` when the queue is full.
    fn dispatch(&mut self, batch: Vec<JobItem>, reason: FlushReason) {
        let size = batch.len();
        self.metrics.record_batch_flush(size, reason);
        // smore-lint: allow(C2): the queue mutex guards a VecDeque
        // push/len — a bounded O(1) critical section; workers holding it
        // do the same. The refusal carries the depth seen under that one
        // acquisition, so the shed path below never re-locks.
        match self.queue.try_push(batch) {
            Ok(depth) => {
                self.metrics.set_queue_depth(depth);
                self.outstanding += size;
            }
            Err(refused) => {
                let threads = self.config.threads.max(1);
                // Retry-After adapts to how long the backlog will take to
                // drain at the observed latency; the refusal carries the
                // depth seen under the push's own lock acquisition (no
                // second queue.depth() lock on the event loop), in jobs —
                // scale by the batch bound for a request-count estimate.
                let backlog = refused.depth.saturating_mul(self.config.max_batch.max(1));
                for item in refused.item {
                    self.metrics.record_shed();
                    let retry = self.metrics.adaptive_retry_after(
                        backlog,
                        threads,
                        self.config.retry_after_secs,
                    );
                    self.respond(
                        item.conn,
                        item.seq,
                        item.work.endpoint,
                        item.arrival,
                        Response::shed(retry),
                        false,
                    );
                }
            }
        }
    }

    /// Pushes buffered response bytes out and closes connections that are
    /// finished or broken.
    fn flush_connections(&mut self, now: Instant) {
        for i in 0..self.poller.slot_count() {
            let Some(token) = self.poller.token_at(i) else { continue };
            let (alive, finished, had_writes) = {
                let Some(conn) = self.poller.get_mut(token) else { continue };
                let had_writes = conn.has_pending_writes();
                let alive = conn.flush_writes(now);
                (alive, conn.finished(), had_writes)
            };
            if had_writes {
                self.activity = true;
            }
            if !alive || finished {
                self.poller.close(token);
            }
        }
    }

    /// Culls dead-weight connections and refreshes the connection-state
    /// gauges. Two ways out: *idle* (nothing in flight, nothing buffered,
    /// no traffic for `read_timeout` — bounds read-side slow-loris) and
    /// *write-stalled* (buffered response bytes the peer has not accepted
    /// for `read_timeout` — bounds a client that sends requests but never
    /// reads the answers, which would otherwise pin its connection and
    /// slot forever). In-flight work without pending writes is solver
    /// latency; the watchdog's hard deadline covers that instead.
    fn housekeeping(&mut self, now: Instant) {
        for i in 0..self.poller.slot_count() {
            let Some(token) = self.poller.token_at(i) else { continue };
            let cull = {
                let Some(conn) = self.poller.get_mut(token) else { continue };
                let idle = conn.in_flight == 0
                    && !conn.has_pending_writes()
                    && now.duration_since(conn.last_activity) >= self.config.read_timeout;
                idle || conn.write_stalled(now, self.config.read_timeout)
            };
            if cull {
                self.poller.close(token);
            }
        }
        self.metrics.set_connection_states(self.poller.open_count(), self.poller.busy_count());
    }

    /// Final shutdown phase: push remaining response bytes out (bounded),
    /// then close every connection.
    fn finish_drain(&mut self) {
        let limit = Instant::now() + DRAIN_FLUSH_LIMIT;
        loop {
            let now = Instant::now();
            let mut pending = false;
            for i in 0..self.poller.slot_count() {
                let Some(token) = self.poller.token_at(i) else { continue };
                let (alive, still_pending) = {
                    let Some(conn) = self.poller.get_mut(token) else { continue };
                    let alive = conn.flush_writes(now);
                    (alive, conn.has_pending_writes())
                };
                if !alive {
                    self.poller.close(token);
                } else if still_pending {
                    pending = true;
                }
            }
            if !pending || Instant::now() >= limit {
                break;
            }
            // smore-lint: allow(C2): shutdown drain only — the loop is
            // bounded by DRAIN_FLUSH_LIMIT and no new work is admitted;
            // a 500us nap between flush sweeps trades nothing but exit
            // latency.
            std::thread::sleep(Duration::from_micros(500));
        }
        for token in self.poller.tokens() {
            self.poller.close(token);
        }
        self.metrics.set_connection_states(0, 0);
    }
}

/// Binds, spawns the event loop and worker pool, and returns immediately.
pub fn start(config: ServeConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = Arc::new(Metrics::new());
    metrics.set_model_version(registry.version());
    let shutdown = Arc::new(AtomicBool::new(false));
    let api = Arc::new(Api {
        registry: Arc::clone(&registry),
        metrics: Arc::clone(&metrics),
        shutdown: Arc::clone(&shutdown),
        breaker: Arc::new(CircuitBreaker::default()),
        events: Arc::new(crate::events::EventsStore::new()),
    });
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_capacity));
    let (completions_tx, completions_rx) = std::sync::mpsc::channel::<Completion>();

    let supervisor = start_supervised_pool(
        Arc::clone(&queue),
        completions_tx,
        Arc::clone(&api),
        Arc::clone(&metrics),
        config.clone(),
    );

    let event_loop = {
        let now = Instant::now();
        let state = EventLoop {
            listener: Some(listener),
            poller: SweepPoller::new(),
            batcher: Batcher::new(config.max_batch, Duration::from_micros(config.max_delay_us)),
            queue,
            completions: completions_rx,
            api,
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            config,
            outstanding: 0,
            draining: false,
            last_housekeeping: now,
            activity: false,
        };
        std::thread::spawn(move || state.run())
    };

    Ok(ServerHandle {
        addr,
        metrics,
        registry,
        shutdown,
        event_loop: Some(event_loop),
        supervisor: Some(supervisor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn boot(threads: usize, queue_capacity: usize) -> ServerHandle {
        boot_with(threads, queue_capacity, 8, 500)
    }

    fn boot_with(
        threads: usize,
        queue_capacity: usize,
        max_batch: usize,
        max_delay_us: u64,
    ) -> ServerHandle {
        let config = ServeConfig {
            threads,
            queue_capacity,
            max_batch,
            max_delay_us,
            read_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        start(config, Arc::new(ModelRegistry::new())).expect("bind")
    }

    /// One full request/response round trip over real TCP. Sends
    /// `Connection: close` so `read_to_string` sees EOF.
    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    fn closing(request_line: &str) -> String {
        format!("{request_line}\r\nHost: t\r\nConnection: close\r\n\r\n")
    }

    /// Reads exactly one `Content-Length`-framed response off a keep-alive
    /// connection. `buf` carries over bytes read past the frame boundary
    /// (pipelined responses coalesce into one segment), so pass the same
    /// buffer for every response on a connection.
    fn read_framed(stream: &mut TcpStream, buf: &mut Vec<u8>) -> String {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
                let content_length: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("framed response must carry Content-Length");
                let frame_len = head_end + 4 + content_length;
                if buf.len() >= frame_len {
                    let frame = String::from_utf8_lossy(&buf[..frame_len]).to_string();
                    buf.drain(..frame_len);
                    return frame;
                }
            }
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "unexpected EOF mid-response: {:?}", String::from_utf8_lossy(buf));
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn healthz_round_trips_over_tcp() {
        let server = boot(2, 16);
        let reply = roundtrip(server.addr(), &closing("GET /healthz HTTP/1.1"));
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        server.stop();
        server.join();
    }

    #[test]
    fn unknown_paths_and_bad_requests_get_error_statuses() {
        let server = boot(2, 16);
        assert!(
            roundtrip(server.addr(), &closing("GET /nope HTTP/1.1")).starts_with("HTTP/1.1 404")
        );
        assert!(
            roundtrip(server.addr(), &closing("PUT /healthz HTTP/1.1")).starts_with("HTTP/1.1 405")
        );
        assert!(roundtrip(server.addr(), "garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
        server.stop();
        server.join();
    }

    #[test]
    fn keep_alive_pipelining_answers_in_order_and_honours_close() {
        let server = boot(2, 16);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        // Three pipelined requests in one write; the third asks to close.
        let burst = concat!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
            "POST /v1/feasible?dataset=delivery&gen_seed=7&worker=0&task=0 HTTP/1.1\r\nHost: t\r\n\r\n",
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        stream.write_all(burst.as_bytes()).expect("write");
        let mut carry = Vec::new();
        let first = read_framed(&mut stream, &mut carry);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(first.contains("Connection: keep-alive"), "{first}");
        assert!(first.contains("\"status\":\"ok\""), "{first}");
        let second = read_framed(&mut stream, &mut carry);
        assert!(second.starts_with("HTTP/1.1 200"), "{second}");
        assert!(second.contains("\"feasible\""), "pipeline order broken: {second}");
        let third = read_framed(&mut stream, &mut carry);
        assert!(third.contains("Connection: close"), "{third}");
        assert!(third.contains("\"status\":\"ok\""), "{third}");
        // The server closes after the close-marked response.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read");
        assert!(carry.is_empty(), "unframed leftover: {:?}", String::from_utf8_lossy(&carry));
        assert!(rest.is_empty(), "bytes after close: {:?}", String::from_utf8_lossy(&rest));
        server.stop();
        server.join();
    }

    #[test]
    fn large_bodies_within_the_cap_complete_instead_of_stalling() {
        // A declared body larger than the per-connection read-ahead cap
        // (but within max_body_bytes) must finish arriving and get an
        // answer. It used to wedge at the cap — parse stayed Partial
        // forever and the idle cull killed the connection with no
        // response.
        let server = boot(2, 16);
        let body = "x".repeat(300 * 1024);
        let raw = format!(
            "POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        );
        let reply = roundtrip(server.addr(), &raw);
        assert!(
            reply.starts_with("HTTP/1.1 400"),
            "garbage 300 KiB body must be answered, got: {:?}",
            &reply[..reply.len().min(120)]
        );
        assert!(reply.contains("invalid solve request"), "{reply}");
        server.stop();
        server.join();
    }

    #[test]
    fn http_1_0_requests_default_to_connection_close() {
        // An HTTP/1.0 client without `Connection: keep-alive` waits for
        // close-delimited EOF; keeping it alive would hang it until the
        // idle cull.
        let server = boot(2, 16);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(3))).expect("timeout");
        stream.write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response then prompt EOF");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        server.stop();
        server.join();
    }

    #[test]
    fn client_that_never_reads_its_responses_is_culled() {
        // Write-side slow-loris: send requests, never read the answers.
        // Once the socket stops accepting response bytes the connection
        // must be culled after read_timeout, not pinned forever.
        let config = ServeConfig {
            threads: 2,
            queue_capacity: 16,
            read_timeout: Duration::from_millis(400),
            ..ServeConfig::default()
        };
        let server = start(config, Arc::new(ModelRegistry::new())).expect("bind");
        // Size the burst off one measured /metrics reply so the response
        // volume far exceeds what the kernel socket buffers can absorb.
        let probe = roundtrip(server.addr(), &closing("GET /metrics HTTP/1.1"));
        let count = (48 * 1024 * 1024 / probe.len().max(256)).clamp(2_000, 60_000);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let burst = b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n".repeat(count);
        stream.write_all(&burst).expect("write");
        // Refuse to read through the whole cull window.
        std::thread::sleep(Duration::from_millis(1500));
        // Drain: the server must have closed its end (kernel-buffered
        // bytes, then EOF or reset). A read timeout here means the
        // connection survived the window — the bug this test pins down.
        let mut chunk = [0u8; 64 * 1024];
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(_) => assert!(Instant::now() < deadline, "drain did not reach EOF"),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                    ) =>
                {
                    break
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    panic!("write-stalled connection was never culled")
                }
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        // The slot is free again: a fresh client is served normally.
        let reply = roundtrip(server.addr(), &closing("GET /healthz HTTP/1.1"));
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        server.stop();
        server.join();
    }

    #[test]
    fn query_form_solve_works_end_to_end() {
        let server = boot(2, 16);
        let reply = roundtrip(
            server.addr(),
            &closing("POST /v1/solve?dataset=delivery&gen_seed=7&method=greedy HTTP/1.1"),
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        let metrics = roundtrip(server.addr(), &closing("GET /metrics HTTP/1.1"));
        assert!(
            metrics.contains("smore_requests_total{endpoint=\"solve\",status=\"200\"} 1"),
            "{metrics}"
        );
        assert!(metrics.contains("smore_batch_flush_total"), "{metrics}");
        assert!(metrics.contains("smore_connections_accepted_total"), "{metrics}");
        server.stop();
        server.join();
    }

    #[test]
    fn full_queue_sheds_requests_with_503_and_retry_after() {
        // One worker, queue of one job, batches of one: the first solve
        // occupies the worker (~tens of ms), the second fills the queue,
        // and later solves must be shed with 503 on their own connection.
        let server = boot_with(1, 1, 1, 0);
        let mut clients: Vec<TcpStream> = (0..8)
            .map(|_| {
                let mut stream = TcpStream::connect(server.addr()).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                stream
                    .write_all(
                        b"POST /v1/solve?dataset=delivery&gen_seed=9&method=greedy HTTP/1.1\r\nHost: t\r\n\r\n",
                    )
                    .expect("write");
                stream
            })
            .collect();
        let mut shed_seen = 0;
        for stream in &mut clients {
            let reply = read_framed(stream, &mut Vec::new());
            if reply.starts_with("HTTP/1.1 503") {
                assert!(reply.contains("Retry-After: "), "{reply}");
                shed_seen += 1;
            } else {
                assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
            }
        }
        assert!(shed_seen >= 1, "expected at least one shed response");
        assert!(server.metrics().shed_total() >= 1);
        assert!(server.metrics().queue_high_water() >= 1);
        drop(clients);
        server.stop();
        server.join();
    }

    #[test]
    fn admin_shutdown_drains_and_exits() {
        let server = boot(2, 16);
        let addr = server.addr();
        let reply = roundtrip(addr, &closing("POST /admin/shutdown HTTP/1.1"));
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("shutting down"), "{reply}");
        server.join();
        // The listener is gone: fresh connections must fail.
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err(), "listener should be closed");
    }
}
