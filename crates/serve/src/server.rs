//! The server proper: acceptor thread, bounded queue, worker pool.
//!
//! Flow of one request: the acceptor `accept()`s a connection and
//! `try_push`es it (with its arrival timestamp) onto the bounded queue. A
//! full queue means the acceptor itself answers `503 + Retry-After` and
//! closes — shedding costs no worker time and bounds queue latency. Worker
//! threads pop connections, parse the request, dispatch through
//! [`Api::handle`] with their thread-local [`SolveSession`], write the
//! response, and close. Latency is measured accept → response written, so
//! the histogram includes queue wait.
//!
//! Shutdown (via [`ServerHandle::stop`] or `POST /admin/shutdown`) flips a
//! flag the acceptor polls; it closes the listener, shuts the queue down,
//! and every already-accepted connection is still answered before the
//! workers exit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smore_tsptw::FaultConfig;

use crate::api::Api;
use crate::breaker::CircuitBreaker;
use crate::http::{write_response, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use crate::supervisor::start_supervised_pool;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one `SolveSession`).
    pub threads: usize,
    /// Bounded queue capacity; connections beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Per-request body size cap in bytes.
    pub max_body_bytes: usize,
    /// Socket read timeout so a silent client cannot pin a worker forever.
    pub read_timeout: Duration,
    /// Floor for the adaptive `Retry-After` advertised on shed responses.
    pub retry_after_secs: u32,
    /// Watchdog limit: a request still unanswered past this gets a 504
    /// from the watchdog even if the solver is wedged.
    pub hard_deadline: Duration,
    /// Server-side chaos: inject solver faults into every worker session.
    /// `None` (the default) serves faultlessly.
    pub faults: Option<FaultConfig>,
    /// Seed for the fault-injection schedule. One shared seed keeps the
    /// schedule a pure function of the problem, preserving byte-identical
    /// responses across workers.
    pub fault_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_capacity: 64,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            hard_deadline: Duration::from_secs(30),
            faults: None,
            fault_seed: 0,
        }
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    registry: Arc<ModelRegistry>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics (shared with the worker threads).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The server's model registry.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// True once shutdown has been requested (by [`ServerHandle::stop`] or
    /// `POST /admin/shutdown`).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without waiting.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the acceptor and every worker have exited (all accepted
    /// requests answered). Call [`ServerHandle::stop`] first, or let a
    /// `POST /admin/shutdown` trigger it remotely.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

/// How often the nonblocking acceptor polls for connections and checks the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Answers a shed connection with `503 + Retry-After` and closes it
/// gracefully. The client's request bytes are still unread at this point;
/// closing with unread data makes the kernel send RST, which can destroy
/// the 503 frame before the client reads it. Draining to the client's FIN
/// (bounded by a short timeout) lets the frame arrive intact.
fn shed_connection(stream: &mut TcpStream, response: &Response) {
    let _ = stream.set_nonblocking(false);
    let _ = write_response(stream, response);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 1024];
    while matches!(std::io::Read::read(stream, &mut sink), Ok(n) if n > 0) {}
}

/// Binds, spawns the acceptor and worker pool, and returns immediately.
pub fn start(config: ServeConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = Arc::new(Metrics::new());
    metrics.set_model_version(registry.version());
    let shutdown = Arc::new(AtomicBool::new(false));
    let api = Arc::new(Api {
        registry: Arc::clone(&registry),
        metrics: Arc::clone(&metrics),
        shutdown: Arc::clone(&shutdown),
        breaker: Arc::new(CircuitBreaker::default()),
    });
    let queue: Arc<BoundedQueue<(TcpStream, Instant)>> =
        Arc::new(BoundedQueue::new(config.queue_capacity));

    let supervisor = start_supervised_pool(
        Arc::clone(&queue),
        Arc::clone(&api),
        Arc::clone(&metrics),
        config.clone(),
    );

    let acceptor = {
        let queue = Arc::clone(&queue);
        let metrics = Arc::clone(&metrics);
        let shutdown = Arc::clone(&shutdown);
        let threads = config.threads.max(1);
        let retry_floor = config.retry_after_secs;
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => match queue.try_push((stream, Instant::now())) {
                        Ok(depth) => metrics.set_queue_depth(depth),
                        Err(((mut stream, arrival), _reason)) => {
                            // Queue full (or racing shutdown): shed from the
                            // acceptor so backpressure costs no worker time.
                            // Retry-After adapts to how long the backlog
                            // will take to drain at the observed latency.
                            metrics.record_shed();
                            let retry =
                                metrics.adaptive_retry_after(queue.depth(), threads, retry_floor);
                            let response = Response::shed(retry);
                            let status = response.status;
                            // Off-thread: the graceful close below blocks
                            // up to the drain timeout, which would stall
                            // the acceptor during a shed burst.
                            std::thread::spawn(move || shed_connection(&mut stream, &response));
                            metrics.record(
                                Endpoint::Other,
                                status,
                                arrival.elapsed().as_secs_f64() * 1000.0,
                            );
                        }
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    // Transient accept failure (e.g. aborted handshake).
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Listener drops here: new connections are refused while the
            // queue drains the ones already accepted.
            drop(listener);
            queue.shut_down();
        })
    };

    Ok(ServerHandle {
        addr,
        metrics,
        registry,
        shutdown,
        acceptor: Some(acceptor),
        supervisor: Some(supervisor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn boot(threads: usize, queue_capacity: usize) -> ServerHandle {
        let config = ServeConfig {
            threads,
            queue_capacity,
            read_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        start(config, Arc::new(ModelRegistry::new())).expect("bind")
    }

    /// One full request/response round trip over real TCP.
    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn healthz_round_trips_over_tcp() {
        let server = boot(2, 16);
        let reply = roundtrip(server.addr(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        server.stop();
        server.join();
    }

    #[test]
    fn unknown_paths_and_bad_requests_get_error_statuses() {
        let server = boot(2, 16);
        assert!(roundtrip(server.addr(), "GET /nope HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(
            roundtrip(server.addr(), "PUT /healthz HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405")
        );
        assert!(roundtrip(server.addr(), "garbage\r\n\r\n").starts_with("HTTP/1.1 400"));
        server.stop();
        server.join();
    }

    #[test]
    fn query_form_solve_works_end_to_end() {
        let server = boot(2, 16);
        let reply = roundtrip(
            server.addr(),
            "POST /v1/solve?dataset=delivery&gen_seed=7&method=greedy HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        let metrics = roundtrip(server.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(
            metrics.contains("smore_requests_total{endpoint=\"solve\",status=\"200\"} 1"),
            "{metrics}"
        );
        server.stop();
        server.join();
    }

    #[test]
    fn full_queue_sheds_with_503_and_retry_after() {
        // One worker, queue of one. Idle connections pin the worker (it
        // blocks reading) and fill the queue; the rest must be shed.
        let server = boot(1, 1);
        let mut idle: Vec<TcpStream> = Vec::new();
        let mut shed_seen = 0;
        for _ in 0..8 {
            let stream = TcpStream::connect(server.addr()).expect("connect");
            stream.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
            idle.push(stream);
            std::thread::sleep(Duration::from_millis(20));
        }
        for stream in &mut idle {
            let mut buf = [0u8; 512];
            if let Ok(n) = stream.read(&mut buf) {
                let head = String::from_utf8_lossy(&buf[..n]).to_string();
                if head.starts_with("HTTP/1.1 503") {
                    assert!(head.contains("Retry-After: 1"), "{head}");
                    shed_seen += 1;
                }
            }
        }
        assert!(shed_seen >= 1, "expected at least one shed response");
        assert!(server.metrics().shed_total() >= 1);
        assert!(server.metrics().queue_high_water() >= 1);
        drop(idle);
        server.stop();
        server.join();
    }

    #[test]
    fn admin_shutdown_drains_and_exits() {
        let server = boot(2, 16);
        let addr = server.addr();
        let reply = roundtrip(addr, "POST /admin/shutdown HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("shutting down"), "{reply}");
        server.join();
        // The listener is gone: fresh connections must fail.
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err(), "listener should be closed");
    }
}
