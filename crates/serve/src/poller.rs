//! Readiness sweeping over nonblocking sockets, and the per-connection
//! state machine for HTTP/1.1 keep-alive and pipelining.
//!
//! The workspace forbids unsafe code and external crates, so there is no
//! OS readiness queue (epoll/kqueue) to call into. Instead every
//! connection socket runs in nonblocking mode and the event loop *sweeps*:
//! a `read` returning `WouldBlock` means "idle", anything else is
//! progress. To keep a sweep over thousands of mostly-idle connections
//! cheap, each connection carries an adaptive poll deadline — an idle
//! connection's next read attempt backs off geometrically (1ms doubling to
//! [`MAX_IDLE_BACKOFF`]) and snaps back to zero on any activity, so active
//! connections are polled every loop iteration while parked keep-alive
//! connections cost a clock comparison.
//!
//! [`Conn`] owns the byte-level invariants of pipelining: requests are
//! numbered in arrival order and responses are written in exactly that
//! order, no matter how the worker pool reorders completion. Out-of-order
//! completions park in a small per-connection buffer until their turn.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Idle-poll backoff ceiling. A parked keep-alive connection is probed at
/// least this often, bounding worst-case added latency for a connection
/// that wakes up after a long quiet spell.
pub(crate) const MAX_IDLE_BACKOFF: Duration = Duration::from_millis(32);

/// Per-sweep read chunk. Large enough to take a full pipelined burst in
/// one syscall, small enough to keep one connection from starving a sweep.
const READ_CHUNK: usize = 16 * 1024;

/// Default cap on buffered bytes read ahead of parsing per connection; a
/// client pipelining faster than the server answers is paused, not
/// buffered without bound. A request whose declared body needs more room
/// (but fits `max_body_bytes`) raises the cap via [`Conn::raise_read_cap`]
/// for exactly that request.
pub(crate) const MAX_READ_BUF: usize = 256 * 1024;

/// Stable handle to a pooled connection. The generation guards against
/// slot reuse: a completion for a connection that died and whose slot now
/// hosts a stranger resolves to `None` instead of the stranger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConnToken {
    pub(crate) index: usize,
    pub(crate) generation: u64,
}

/// What a read sweep observed on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// New bytes landed in the read buffer.
    Data,
    /// Nothing to read right now.
    Idle,
    /// Peer half-closed; no more requests will arrive.
    Eof,
    /// The connection is unusable (reset, broken pipe, …).
    Dead,
}

/// One pooled connection's state.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into requests.
    pub(crate) read_buf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number the next written response must have.
    next_write_seq: u64,
    /// Completions that arrived ahead of their turn (seq, encoded bytes).
    parked: Vec<(u64, Vec<u8>)>,
    /// Requests handed to workers (or pending inline) and not yet written.
    pub(crate) in_flight: usize,
    /// Set once a request or error demands the connection close after the
    /// response with this seq is written.
    close_after: Option<u64>,
    /// Peer sent EOF; drain writes, accept no new requests.
    pub(crate) peer_closed: bool,
    /// Instant of the last read/write progress (idle-cull clock).
    pub(crate) last_activity: Instant,
    /// Instant the socket last accepted buffered response bytes (or had
    /// none pending). Stale while `write_buf` is non-empty means the peer
    /// stopped reading — the write-side slow-loris the cull must bound.
    last_write_progress: Instant,
    /// Read-ahead cap currently in force ([`MAX_READ_BUF`] unless raised
    /// for an oversized in-flight request body).
    read_cap: usize,
    /// Current idle backoff (zero while the connection is active).
    backoff: Duration,
    /// Next read attempt not before this instant.
    due_at: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_write_seq: 0,
            parked: Vec::new(),
            in_flight: 0,
            close_after: None,
            peer_closed: false,
            last_activity: now,
            last_write_progress: now,
            read_cap: MAX_READ_BUF,
            backoff: Duration::ZERO,
            due_at: now,
        }
    }

    /// Lets the read buffer grow to `needed` bytes so a request whose
    /// declared body exceeds [`MAX_READ_BUF`] (but passed the
    /// `max_body_bytes` check at parse time) can finish arriving instead
    /// of stalling forever. Resets back via [`Conn::reset_read_cap`] once
    /// the request completes.
    pub(crate) fn raise_read_cap(&mut self, needed: usize, now: Instant) {
        if needed > self.read_cap {
            self.read_cap = needed;
            // The buffer may have been parked at the old cap; resume
            // reading on the next sweep.
            self.backoff = Duration::ZERO;
            self.due_at = now;
        }
    }

    /// Restores the default read-ahead cap (call when a request completes).
    pub(crate) fn reset_read_cap(&mut self) {
        self.read_cap = MAX_READ_BUF;
    }

    /// Whether this connection should be read-swept now.
    pub(crate) fn read_due(&self, now: Instant) -> bool {
        now >= self.due_at && !self.peer_closed && self.close_after.is_none()
    }

    /// Reads whatever the socket has ready into `read_buf`, up to the
    /// buffer cap. Updates the activity clock and idle backoff.
    pub(crate) fn sweep_read(&mut self, now: Instant) -> ReadOutcome {
        if self.read_buf.len() >= self.read_cap {
            // Parsing is behind; let it catch up before reading more.
            return ReadOutcome::Idle;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut got_any = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return if got_any { ReadOutcome::Data } else { ReadOutcome::Eof };
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    got_any = true;
                    self.last_activity = now;
                    self.backoff = Duration::ZERO;
                    self.due_at = now;
                    if n < chunk.len() || self.read_buf.len() >= self.read_cap {
                        return ReadOutcome::Data;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return if got_any {
                        ReadOutcome::Data
                    } else {
                        self.backoff = if self.backoff.is_zero() {
                            Duration::from_millis(1)
                        } else {
                            (self.backoff * 2).min(MAX_IDLE_BACKOFF)
                        };
                        self.due_at = now + self.backoff;
                        ReadOutcome::Idle
                    };
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Dead,
            }
        }
    }

    /// Assigns the next request sequence number (arrival order).
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight += 1;
        seq
    }

    /// Marks the connection to close after the response for `seq` goes
    /// out (`Connection: close`, parse errors, watchdog kills).
    pub(crate) fn close_after(&mut self, seq: u64) {
        self.close_after = Some(match self.close_after {
            Some(existing) => existing.min(seq),
            None => seq,
        });
    }

    /// Whether a response for `seq` will still be written. False once an
    /// earlier response already closed the connection.
    fn will_write(&self, seq: u64) -> bool {
        self.close_after.map(|c| seq <= c).unwrap_or(true)
    }

    /// Accepts the encoded response for request `seq`, releasing it to the
    /// write buffer in arrival order (parking it if earlier responses are
    /// still pending).
    pub(crate) fn complete(&mut self, seq: u64, encoded: Vec<u8>) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if !self.will_write(seq) {
            return;
        }
        if seq == self.next_write_seq {
            self.write_buf.extend_from_slice(&encoded);
            self.next_write_seq += 1;
            // Release any parked successors that are now in order.
            while let Some(pos) = self.parked.iter().position(|(s, _)| *s == self.next_write_seq) {
                let (_, bytes) = self.parked.swap_remove(pos);
                self.write_buf.extend_from_slice(&bytes);
                self.next_write_seq += 1;
            }
        } else {
            self.parked.push((seq, encoded));
        }
    }

    /// Pushes buffered response bytes into the socket without blocking.
    /// Returns `false` when the connection broke.
    pub(crate) fn flush_writes(&mut self, now: Instant) -> bool {
        if self.write_buf.is_empty() {
            self.last_write_progress = now;
            return true;
        }
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_buf.drain(..n);
                    self.last_activity = now;
                    self.last_write_progress = now;
                    self.backoff = Duration::ZERO;
                    self.due_at = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Whether buffered response bytes have made no socket progress for
    /// `timeout` — the peer sent a request and then stopped reading. The
    /// event loop flushes every connection each iteration, so while the
    /// write buffer is empty the progress clock stays fresh; stale +
    /// pending means zero bytes accepted over the whole window.
    pub(crate) fn write_stalled(&self, now: Instant, timeout: Duration) -> bool {
        !self.write_buf.is_empty() && now.duration_since(self.last_write_progress) >= timeout
    }

    /// Whether the connection has finished its final response and should
    /// be closed by the event loop.
    pub(crate) fn finished(&self) -> bool {
        let closing = self.close_after.map(|c| self.next_write_seq > c).unwrap_or(false);
        (closing || self.peer_closed) && self.write_buf.is_empty() && self.in_flight == 0
    }

    /// Whether new requests may still be parsed from this connection.
    pub(crate) fn accepting_requests(&self) -> bool {
        self.close_after.is_none()
    }

    /// Whether the response for `seq` is the connection's last (drives the
    /// `Connection:` header on that response).
    pub(crate) fn closing_at(&self, seq: u64) -> bool {
        self.close_after == Some(seq)
    }

    /// Whether encoded bytes are still waiting for the socket.
    pub(crate) fn has_pending_writes(&self) -> bool {
        !self.write_buf.is_empty()
    }
}

/// Slab of pooled connections swept by the event loop.
pub(crate) struct SweepPoller {
    slots: Vec<Option<Conn>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    open: usize,
}

impl SweepPoller {
    pub(crate) fn new() -> Self {
        SweepPoller { slots: Vec::new(), generations: Vec::new(), free: Vec::new(), open: 0 }
    }

    /// Adopts a connection into the slab (the stream must already be
    /// nonblocking). Returns its token.
    pub(crate) fn register(&mut self, stream: TcpStream, now: Instant) -> ConnToken {
        let conn = Conn::new(stream, now);
        self.open += 1;
        match self.free.pop() {
            Some(index) => {
                self.generations[index] += 1;
                self.slots[index] = Some(conn);
                ConnToken { index, generation: self.generations[index] }
            }
            None => {
                self.slots.push(Some(conn));
                self.generations.push(0);
                ConnToken { index: self.slots.len() - 1, generation: 0 }
            }
        }
    }

    /// The connection behind `token`, unless it died and the slot was
    /// reused since.
    pub(crate) fn get_mut(&mut self, token: ConnToken) -> Option<&mut Conn> {
        if self.generations.get(token.index) != Some(&token.generation) {
            return None;
        }
        self.slots.get_mut(token.index).and_then(Option::as_mut)
    }

    /// Drops the connection behind `token` (the socket closes on drop).
    pub(crate) fn close(&mut self, token: ConnToken) {
        if self.generations.get(token.index) == Some(&token.generation) {
            if let Some(slot) = self.slots.get_mut(token.index) {
                if slot.take().is_some() {
                    self.open -= 1;
                    self.free.push(token.index);
                }
            }
        }
    }

    /// Upper bound of slot indices ever used; drive allocation-free sweeps
    /// with [`SweepPoller::token_at`] over `0..slot_count()`.
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Token of the live connection in slot `index`, if any.
    pub(crate) fn token_at(&self, index: usize) -> Option<ConnToken> {
        self.slots.get(index).and_then(|slot| {
            slot.as_ref().map(|_| ConnToken { index, generation: self.generations[index] })
        })
    }

    /// Tokens of every live connection (snapshot; safe to close while
    /// iterating the returned list).
    pub(crate) fn tokens(&self) -> Vec<ConnToken> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|_| ConnToken { index: i, generation: self.generations[i] })
            })
            .collect()
    }

    /// Number of live connections.
    pub(crate) fn open_count(&self) -> usize {
        self.open
    }

    /// Number of live connections with requests in flight.
    pub(crate) fn busy_count(&self) -> usize {
        self.slots.iter().flatten().filter(|c| c.in_flight > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (client, server)
    }

    #[test]
    fn sweep_reads_data_and_backs_off_when_idle() {
        let (mut client, server) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now);
        assert_eq!(conn.sweep_read(now), ReadOutcome::Idle);
        assert!(!conn.read_due(now), "idle connection backs off");
        assert!(conn.read_due(now + Duration::from_millis(1)));
        client.write_all(b"hello").expect("write");
        client.flush().expect("flush");
        // Give the loopback a moment to deliver.
        std::thread::sleep(Duration::from_millis(10));
        let later = Instant::now();
        assert_eq!(conn.sweep_read(later), ReadOutcome::Data);
        assert_eq!(conn.read_buf, b"hello");
        assert!(conn.read_due(later), "activity resets the backoff");
        drop(client);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(conn.sweep_read(Instant::now()), ReadOutcome::Eof);
        assert!(conn.peer_closed);
    }

    #[test]
    fn completions_are_written_in_request_order() {
        let (mut client, server) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now);
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        let s2 = conn.assign_seq();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        // Finish out of order: 2, 0, 1.
        conn.complete(s2, b"C".to_vec());
        conn.complete(s0, b"A".to_vec());
        conn.complete(s1, b"B".to_vec());
        assert_eq!(conn.in_flight, 0, "all three completions released");
        assert!(conn.flush_writes(Instant::now()));
        client.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let mut got = [0u8; 3];
        client.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"ABC", "pipelined responses must preserve request order");
    }

    #[test]
    fn close_after_suppresses_later_responses_and_finishes() {
        let (_client, server) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now);
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        conn.close_after(s0);
        assert!(!conn.accepting_requests());
        conn.complete(s1, b"LATE".to_vec());
        conn.complete(s0, b"BYE".to_vec());
        assert_eq!(conn.write_buf, b"BYE", "responses after the close boundary are dropped");
        assert!(conn.flush_writes(Instant::now()));
        assert!(conn.finished());
    }

    #[test]
    fn raised_read_cap_resumes_reading_past_the_default_cap() {
        let (mut client, server) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now);
        client.write_all(b"tail").expect("write");
        client.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(10));
        // Simulate a request whose body filled the default read-ahead cap.
        conn.read_buf = vec![0u8; MAX_READ_BUF];
        assert_eq!(conn.sweep_read(Instant::now()), ReadOutcome::Idle, "cap blocks reads");
        conn.raise_read_cap(MAX_READ_BUF + 16, Instant::now());
        assert_eq!(conn.sweep_read(Instant::now()), ReadOutcome::Data);
        assert_eq!(&conn.read_buf[MAX_READ_BUF..], b"tail");
        conn.reset_read_cap();
        assert_eq!(conn.sweep_read(Instant::now()), ReadOutcome::Idle, "default cap restored");
    }

    #[test]
    fn unread_responses_stall_the_write_clock_until_the_peer_reads() {
        let (mut client, server) = pair();
        let t0 = Instant::now();
        let mut conn = Conn::new(server, t0);
        let timeout = Duration::from_millis(100);
        assert!(!conn.write_stalled(t0 + timeout, timeout), "no pending writes, no stall");
        // A response far larger than the socket buffers; the peer reads none.
        let seq = conn.assign_seq();
        conn.complete(seq, vec![b'x'; 64 * 1024 * 1024]);
        assert!(conn.flush_writes(t0));
        assert!(conn.has_pending_writes(), "the kernel cannot swallow 64 MiB unread");
        assert!(!conn.write_stalled(t0, timeout));
        assert!(conn.write_stalled(t0 + timeout, timeout), "no progress for a full window");
        // The peer reads; the next flush makes progress and resets the clock.
        let mut sink = vec![0u8; 1024 * 1024];
        client.read_exact(&mut sink).expect("read");
        std::thread::sleep(Duration::from_millis(10));
        let t1 = Instant::now();
        assert!(conn.flush_writes(t1));
        assert!(!conn.write_stalled(t1 + timeout / 2, timeout), "progress resets the clock");
    }

    #[test]
    fn slab_reuses_slots_with_generation_guard() {
        let mut poller = SweepPoller::new();
        let now = Instant::now();
        let (_c1, s1) = pair();
        let (_c2, s2) = pair();
        let t1 = poller.register(s1, now);
        assert_eq!(poller.open_count(), 1);
        poller.close(t1);
        assert_eq!(poller.open_count(), 0);
        let t2 = poller.register(s2, now);
        assert_eq!(t2.index, t1.index, "slot is reused");
        assert_ne!(t2.generation, t1.generation, "generation moves on");
        assert!(poller.get_mut(t1).is_none(), "stale token must not resolve");
        assert!(poller.get_mut(t2).is_some());
        assert_eq!(poller.busy_count(), 0);
        poller.get_mut(t2).expect("live").assign_seq();
        assert_eq!(poller.busy_count(), 1);
    }
}
