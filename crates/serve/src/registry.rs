//! Hot-swappable TASNet checkpoints behind an [`Arc`].
//!
//! Worker threads take an `Arc<LoadedModel>` snapshot per request;
//! `POST /admin/reload` builds the replacement off to the side and swaps
//! the slot under a write lock held only for the pointer store. In-flight
//! requests keep decoding against the snapshot they already cloned — a
//! reload never fails or perturbs a request that has started.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use smore::{Critic, Tasnet, TasnetConfig};
use smore_model::ModelCheckpoint;

/// A fully materialized checkpoint: policy network + critic.
pub struct LoadedModel {
    /// The TASNet policy.
    pub net: Tasnet,
    /// Its critic (required by the episode runner; unused weights are fine).
    pub critic: Critic,
}

impl LoadedModel {
    /// Greedy-decodes a batch of instances sharing **one** batched encoder
    /// pass (DESIGN.md §13) — the micro-batching primitive for serving:
    /// queued requests against the same snapshot can be answered with a
    /// single model forward instead of one per request. Returns one
    /// solution per instance (`None` when the instance admits no episode).
    /// Batched forwards are bit-identical to solo forwards, so each row
    /// equals what a single-instance solve would return.
    pub fn forward_batch(
        &self,
        instances: &[smore_model::Instance],
        solver: &dyn smore_tsptw::TsptwSolver,
    ) -> Vec<Option<smore_model::Solution>> {
        smore::greedy_solve_batch(&self.net, instances, solver)
    }
}

/// Why a checkpoint could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The policy parameter JSON failed to parse.
    BadPolicyParams(String),
    /// The critic parameter JSON failed to parse.
    BadCriticParams(String),
    /// A config field is out of the buildable range.
    BadConfig(String),
    /// The sealed content checksum does not match the fields (a torn,
    /// truncated, or bit-flipped checkpoint).
    BadChecksum(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::BadPolicyParams(e) => write!(f, "policy params: {e}"),
            RegistryError::BadCriticParams(e) => write!(f, "critic params: {e}"),
            RegistryError::BadConfig(e) => write!(f, "checkpoint config: {e}"),
            RegistryError::BadChecksum(e) => write!(f, "checkpoint integrity: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Builds a [`LoadedModel`] from a checkpoint DTO. Sealed checkpoints are
/// checksum-verified first — a corrupt one is rejected wholesale before any
/// parameter parsing, and the caller's previous model stays live.
pub fn build_model(ckpt: &ModelCheckpoint) -> Result<LoadedModel, RegistryError> {
    ckpt.verify().map_err(|e| RegistryError::BadChecksum(e.to_string()))?;
    if ckpt.grid_rows == 0 || ckpt.grid_cols == 0 {
        return Err(RegistryError::BadConfig("grid must be non-empty".into()));
    }
    if ckpt.d_model == 0 || ckpt.heads == 0 || !ckpt.d_model.is_multiple_of(ckpt.heads) {
        return Err(RegistryError::BadConfig(format!(
            "d_model {} must be a positive multiple of heads {}",
            ckpt.d_model, ckpt.heads
        )));
    }
    let mut cfg = TasnetConfig::for_grid(ckpt.grid_rows, ckpt.grid_cols);
    cfg.d_model = ckpt.d_model;
    cfg.heads = ckpt.heads;
    cfg.enc_layers = ckpt.enc_layers;
    let d = cfg.d_model;
    let mut net = Tasnet::new(cfg, 0);
    let policy = smore_nn::ParamStore::from_json(&ckpt.policy)
        .map_err(|e| RegistryError::BadPolicyParams(e.to_string()))?;
    net.store.load_values_from(&policy);
    let mut critic = Critic::new(d, 0);
    let critic_params = smore_nn::ParamStore::from_json(&ckpt.critic)
        .map_err(|e| RegistryError::BadCriticParams(e.to_string()))?;
    critic.store.load_values_from(&critic_params);
    Ok(LoadedModel { net, critic })
}

/// The registry: at most one live checkpoint, swapped atomically. The
/// version is stored alongside the model inside the slot so a snapshot
/// always reports the version of the exact checkpoint it holds, even if a
/// reload lands between reading the slot and reading a separate counter.
#[derive(Default)]
pub struct ModelRegistry {
    slot: RwLock<Option<(Arc<LoadedModel>, u64)>>,
    version: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry (version 0, no model).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `ckpt` and makes it the live model. Returns the new version.
    /// On error the previous model stays live.
    pub fn load(&self, ckpt: &ModelCheckpoint) -> Result<u64, RegistryError> {
        // The expensive build happens outside the lock; the write section
        // is a pointer store.
        let model = Arc::new(build_model(ckpt)?);
        Ok(self.swap(model))
    }

    /// Installs an already-built model (used by tests and in-process boots).
    pub fn install(&self, model: LoadedModel) -> u64 {
        self.swap(Arc::new(model))
    }

    fn swap(&self, model: Arc<LoadedModel>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let version = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        *slot = Some((model, version));
        version
    }

    /// The live model and its version, if any. The returned `Arc` stays
    /// valid across concurrent reloads.
    pub fn snapshot(&self) -> Option<(Arc<LoadedModel>, u64)> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of successful loads so far (0 = never loaded).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build environments may link a non-functional `serde_json` stand-in;
    /// JSON round-trip tests self-skip there (the logic-only tests below use
    /// [`ModelRegistry::install`], which never touches JSON).
    fn serde_is_functional() -> bool {
        serde_json::from_str::<u64>("1").is_ok()
    }

    fn tiny_cfg() -> TasnetConfig {
        let mut c = TasnetConfig::for_grid(3, 3);
        c.d_model = 8;
        c.heads = 2;
        c.enc_layers = 1;
        c
    }

    fn tiny_model() -> LoadedModel {
        LoadedModel { net: Tasnet::new(tiny_cfg(), 7), critic: Critic::new(8, 8) }
    }

    fn tiny_checkpoint() -> ModelCheckpoint {
        // Round-trip real params so load_values_from sees matching keys.
        let m = tiny_model();
        ModelCheckpoint {
            grid_rows: 3,
            grid_cols: 3,
            d_model: 8,
            heads: 2,
            enc_layers: 1,
            policy: m.net.store.to_json(),
            critic: m.critic.store.to_json(),
            checksum: None,
            progress: None,
        }
    }

    #[test]
    fn install_bumps_version_and_snapshot_sees_it() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.version(), 0);
        assert!(reg.snapshot().is_none());
        assert_eq!(reg.install(tiny_model()), 1);
        assert_eq!(reg.version(), 1);
        assert!(reg.snapshot().is_some());
        assert_eq!(reg.install(tiny_model()), 2);
    }

    #[test]
    fn old_snapshots_survive_a_reload() {
        let reg = ModelRegistry::new();
        reg.install(tiny_model());
        let (snap, v) = reg.snapshot().expect("snapshot");
        reg.install(tiny_model());
        // The old Arc is still usable even though the slot moved on, and it
        // remembers the version it was installed at.
        assert_eq!(snap.net.cfg.d_model, 8);
        assert_eq!(v, 1);
        assert_eq!(reg.snapshot().expect("snapshot").1, 2);
    }

    #[test]
    fn bad_config_is_rejected_and_previous_model_survives() {
        let reg = ModelRegistry::new();
        reg.install(tiny_model());
        let mut bad = tiny_checkpoint();
        bad.heads = 3; // 8 % 3 != 0 — rejected before any JSON parsing
        assert!(matches!(reg.load(&bad), Err(RegistryError::BadConfig(_))));
        assert_eq!(reg.version(), 1);
        assert!(reg.snapshot().is_some());
    }

    #[test]
    fn load_round_trips_a_real_checkpoint() {
        if !serde_is_functional() {
            return;
        }
        let reg = ModelRegistry::new();
        let v = reg.load(&tiny_checkpoint()).expect("load");
        assert_eq!(v, 1);
        let (snap, _) = reg.snapshot().expect("snapshot");
        assert_eq!(snap.net.cfg.grid_rows, 3);
    }

    #[test]
    fn bad_params_json_is_a_typed_error() {
        let mut ckpt = tiny_checkpoint();
        ckpt.policy = "{not json".into();
        assert!(matches!(build_model(&ckpt), Err(RegistryError::BadPolicyParams(_))));
    }

    #[test]
    fn tampered_sealed_checkpoint_is_rejected_before_parsing() {
        let reg = ModelRegistry::new();
        reg.install(tiny_model());
        let mut ckpt = tiny_checkpoint().sealed();
        ckpt.d_model = 999; // simulated bit-flip/truncation after sealing
        assert!(matches!(reg.load(&ckpt), Err(RegistryError::BadChecksum(_))));
        assert_eq!(reg.version(), 1, "previous model must stay live");
        assert!(reg.snapshot().is_some());
    }

    #[test]
    fn forward_batch_rows_match_independent_single_forwards() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
        use smore_tsptw::InsertionSolver;

        let mut model = tiny_model();
        let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 31);
        let mut rng = SmallRng::seed_from_u64(31);
        let template = g.gen_default(&mut rng);
        let grid = &template.lattice.grid;
        let mut cfg = TasnetConfig::for_grid(grid.rows, grid.cols);
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.enc_layers = 1;
        model.net = Tasnet::new(cfg, 7);

        let mut instances = vec![template];
        for _ in 0..4 {
            instances.push(g.gen_default(&mut rng));
        }
        let solver = InsertionSolver::new();
        let batched = model.forward_batch(&instances, &solver);
        assert_eq!(batched.len(), instances.len());
        for (inst, row) in instances.iter().zip(&batched) {
            let solo = model.forward_batch(std::slice::from_ref(inst), &solver);
            assert_eq!(
                row, &solo[0],
                "batched row must be byte-for-byte the single-instance solve"
            );
        }
        assert!(
            batched.iter().any(|r| r.is_some()),
            "at least one instance should admit an episode"
        );
    }

    #[test]
    fn poisoned_slot_lock_is_recovered_not_propagated() {
        let reg = Arc::new(ModelRegistry::new());
        reg.install(tiny_model());
        // Poison the slot's RwLock: a thread panics while holding the
        // write guard (the same lock `swap` and `snapshot` take).
        let poisoner = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let _guard = reg.slot.write().unwrap_or_else(|e| e.into_inner());
                // Deliberate poison: panic while holding the lock.
                panic!("poisoning the registry lock");
            })
        };
        assert!(poisoner.join().is_err(), "poisoner must panic");
        assert!(reg.slot.is_poisoned(), "lock must actually be poisoned");
        // Reads and writes keep working: poisoning is recovered inline.
        let (snap, v) = reg.snapshot().expect("snapshot after poison");
        assert_eq!(v, 1);
        assert_eq!(snap.net.cfg.d_model, 8);
        assert_eq!(reg.install(tiny_model()), 2);
        assert_eq!(reg.snapshot().expect("snapshot").1, 2);
    }
}
