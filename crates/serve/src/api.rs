//! Request routing and endpoint handlers.
//!
//! A handler is a pure function of (request, registry snapshot, solve
//! session): no ambient clocks, no global state, no randomness beyond the
//! request's own seed. That is what makes the serving determinism contract
//! (identical request bytes → byte-identical response bodies, regardless of
//! which worker thread answers) hold by construction.
//!
//! Requests carry their instance either inline (JSON body, validated on
//! deserialize by `smore-model`) or as a seeded generator spec — in the
//! body's `gen` field or directly in the query string
//! (`POST /v1/solve?dataset=delivery&gen_seed=7&method=greedy`), which
//! keeps load-generator requests tiny.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore::{GreedySelection, RandomSelection, RatioGreedySelection, SolveSession};
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
use smore_model::{
    evaluate, DeadlineSpec, FeasibleRequest, FeasibleResponse, GenerateSpec, Instance,
    ModelCheckpoint, SensingTaskId, Solution, SolveRequest, SolveResponse, WorkerId,
};
use smore_tsptw::{run_fallback, FallbackStage};

use crate::breaker::{Admission, CircuitBreaker};
use crate::http::{Method, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use crate::registry::ModelRegistry;

/// Shared handler context: everything a worker thread needs besides its own
/// [`SolveSession`].
pub struct Api {
    /// Hot-swappable checkpoint slot.
    pub registry: Arc<ModelRegistry>,
    /// Server-wide counters.
    pub metrics: Arc<Metrics>,
    /// Set by `POST /admin/shutdown`; the accept loop watches it.
    pub shutdown: Arc<AtomicBool>,
    /// Model-path circuit breaker; open means `/v1/solve` model requests
    /// are answered by the baseline fallback with `"degraded": true`.
    pub breaker: Arc<CircuitBreaker>,
}

/// Paths the router knows (used to distinguish 404 from 405).
const KNOWN_PATHS: [&str; 6] =
    ["/healthz", "/metrics", "/v1/solve", "/v1/feasible", "/admin/reload", "/admin/shutdown"];

/// The metrics dimension a path belongs to.
pub fn endpoint_of(path: &str) -> Endpoint {
    match path {
        "/v1/solve" => Endpoint::Solve,
        "/v1/feasible" => Endpoint::Feasible,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        "/admin/reload" => Endpoint::Reload,
        "/admin/shutdown" => Endpoint::Shutdown,
        _ => Endpoint::Other,
    }
}

/// Escapes `s` as a JSON string literal (quotes included). Error bodies and
/// hand-assembled responses go through this so they stay valid JSON without
/// depending on a serializer.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON error response with the uniform `{"error": ...}` body.
pub fn error_response(status: u16, message: impl AsRef<str>) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", json_string(message.as_ref())))
}

/// Parses a JSON request body (UTF-8 enforced; `serde_json::from_slice` is
/// avoided so dependency stand-ins only need `from_str`).
fn body_json<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// First value for `key` in a query string (`a=1&b=2` form; no
/// percent-decoding — the API's query grammar is plain alphanumerics).
fn query_get<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn query_num<T: std::str::FromStr>(query: &str, key: &str) -> Result<Option<T>, String> {
    match query_get(query, key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("query parameter {key}={raw:?} is not a number")),
    }
}

/// Builds a [`GenerateSpec`] from query parameters (`dataset` mandatory,
/// `scale` and `gen_seed` optional).
fn gen_spec_from_query(query: &str) -> Result<GenerateSpec, String> {
    let dataset = query_get(query, "dataset")
        .ok_or("query form requires dataset=<delivery|tourism|lade>")?
        .to_string();
    let scale = query_get(query, "scale").map(str::to_string);
    let seed = query_num::<u64>(query, "gen_seed")?.unwrap_or(0);
    Ok(GenerateSpec { dataset, scale, seed })
}

/// Materializes the instance a request refers to: inline XOR generated.
fn materialize(
    instance: Option<Instance>,
    generate: Option<GenerateSpec>,
) -> Result<Instance, String> {
    match (instance, generate) {
        (Some(inst), None) => Ok(inst),
        (None, Some(spec)) => instance_from_spec(&spec),
        (Some(_), Some(_)) => Err("provide exactly one of `instance` and `gen`, not both".into()),
        (None, None) => Err("provide one of `instance` (inline) or `gen` (generator spec)".into()),
    }
}

fn instance_from_spec(spec: &GenerateSpec) -> Result<Instance, String> {
    let kind = match spec.dataset.as_str() {
        "delivery" => DatasetKind::Delivery,
        "tourism" => DatasetKind::Tourism,
        "lade" => DatasetKind::LaDe,
        other => return Err(format!("unknown dataset {other:?} (expected delivery|tourism|lade)")),
    };
    let scale = match spec.scale.as_deref().unwrap_or("small") {
        "small" => Scale::Small,
        "paper" => Scale::Paper,
        other => return Err(format!("unknown scale {other:?} (expected small|paper)")),
    };
    let generator = InstanceGenerator::new(DatasetSpec::of(kind, scale), spec.seed);
    Ok(generator.gen_default(&mut SmallRng::seed_from_u64(spec.seed)))
}

/// The selection method a solve request resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SolveMethod {
    Smore,
    Greedy,
    Ratio,
    Random,
}

impl SolveMethod {
    fn label(self) -> &'static str {
        match self {
            SolveMethod::Smore => "smore",
            SolveMethod::Greedy => "greedy",
            SolveMethod::Ratio => "ratio",
            SolveMethod::Random => "random",
        }
    }
}

impl Api {
    /// Routes one parsed request to its handler.
    pub fn handle(&self, session: &mut SolveSession, req: &Request) -> Response {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/healthz") => Response::json(
                200,
                format!("{{\"status\":\"ok\",\"model_version\":{}}}", self.registry.version()),
            ),
            (Method::Get, "/metrics") => Response::text(200, self.metrics.render()),
            (Method::Post, "/v1/solve") => self.solve(session, req),
            (Method::Post, "/v1/feasible") => self.feasible(session, req),
            (Method::Post, "/admin/reload") => self.reload(req),
            (Method::Post, "/admin/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::json(200, "{\"status\":\"shutting down\"}")
            }
            (_, path) if KNOWN_PATHS.contains(&path) => {
                error_response(405, format!("method not allowed for {path}"))
            }
            (_, path) => error_response(404, format!("no such endpoint: {path}")),
        }
    }

    /// `POST /v1/solve` — full-instance USMDW solve.
    fn solve(&self, session: &mut SolveSession, req: &Request) -> Response {
        let parsed = if !req.body.is_empty() {
            match body_json::<SolveRequest>(&req.body) {
                Ok(p) => p,
                Err(e) => return error_response(400, format!("invalid solve request: {e}")),
            }
        } else if !req.query.is_empty() {
            let generate = match gen_spec_from_query(&req.query) {
                Ok(g) => g,
                Err(e) => return error_response(400, e),
            };
            let budget_ms = match query_num::<u64>(&req.query, "budget_ms") {
                Ok(b) => b,
                Err(e) => return error_response(400, e),
            };
            let seed = match query_num::<u64>(&req.query, "seed") {
                Ok(s) => s,
                Err(e) => return error_response(400, e),
            };
            SolveRequest {
                instance: None,
                generate: Some(generate),
                method: query_get(&req.query, "method").map(str::to_string),
                budget_ms,
                seed,
            }
        } else {
            return error_response(400, "empty solve request: send a JSON body or a query form");
        };

        let method = match parsed.method.as_deref().unwrap_or("auto") {
            "smore" => SolveMethod::Smore,
            "greedy" => SolveMethod::Greedy,
            "ratio" => SolveMethod::Ratio,
            "random" => SolveMethod::Random,
            "auto" => {
                if self.registry.version() > 0 {
                    SolveMethod::Smore
                } else {
                    SolveMethod::Greedy
                }
            }
            other => {
                return error_response(
                    400,
                    format!("unknown method {other:?} (expected smore|greedy|ratio|random|auto)"),
                )
            }
        };

        let instance = match materialize(parsed.instance, parsed.generate) {
            Ok(inst) => inst,
            Err(e) => return error_response(400, e),
        };
        let deadline = DeadlineSpec { budget_ms: parsed.budget_ms }.start();

        let (solution, model_version, degraded, degraded_reason) = match method {
            SolveMethod::Smore => {
                let Some((model, version)) = self.registry.snapshot() else {
                    return error_response(
                        409,
                        "method smore requires a loaded checkpoint (POST /admin/reload first)",
                    );
                };
                let admission = self.breaker.admit(version);
                // The model path is an ordinary `run_fallback` chain —
                // the same machinery the offline FallbackSolver uses —
                // with the model stage elided while the breaker is open.
                let cell = std::cell::RefCell::new(&mut *session);
                let mut stages: Vec<FallbackStage<'_, Instance, Solution, String>> = Vec::new();
                if admission != Admission::Degraded {
                    stages.push(FallbackStage {
                        label: "tasnet",
                        run: Box::new(|inst: &Instance| {
                            cell.borrow_mut()
                                .try_solve_tasnet(&model.net, &model.critic, inst, deadline)
                                .ok_or_else(|| "model episode failed".to_string())
                        }),
                    });
                }
                stages.push(FallbackStage {
                    label: "greedy",
                    run: Box::new(|inst: &Instance| {
                        Ok(cell.borrow_mut().solve_policy(inst, &mut GreedySelection, deadline))
                    }),
                });
                let (winner, solution) =
                    match run_fallback(&instance, &mut stages, || "empty fallback chain".into()) {
                        Ok(r) => r,
                        Err(e) => return error_response(500, format!("solve failed: {e}")),
                    };
                drop(stages);
                let model_ran = admission != Admission::Degraded;
                let model_won = model_ran && winner == 0;
                if model_ran {
                    if model_won {
                        self.breaker.on_success(version);
                    } else if self.breaker.on_failure(version) {
                        self.metrics.record_breaker_trip();
                    }
                }
                self.metrics.set_breaker_state(self.breaker.state().gauge());
                let (degraded, reason) = if !model_ran {
                    (true, Some("circuit breaker open: served by greedy fallback".to_string()))
                } else if !model_won {
                    (true, Some("model episode failed: served by greedy fallback".to_string()))
                } else {
                    (false, None)
                };
                if degraded {
                    self.metrics.record_degraded();
                }
                (solution, version, degraded, reason)
            }
            SolveMethod::Greedy => {
                (session.solve_policy(&instance, &mut GreedySelection, deadline), 0, false, None)
            }
            SolveMethod::Ratio => (
                session.solve_policy(&instance, &mut RatioGreedySelection, deadline),
                0,
                false,
                None,
            ),
            SolveMethod::Random => {
                let mut policy = RandomSelection::new(parsed.seed.unwrap_or(0));
                (session.solve_policy(&instance, &mut policy, deadline), 0, false, None)
            }
        };

        let stats = match evaluate(&instance, &solution) {
            Ok(stats) => stats,
            // Solvers return validated solutions; reaching this is a server
            // bug, not a client error.
            Err(e) => return error_response(500, format!("solution failed validation: {e}")),
        };
        let body = SolveResponse {
            method: method.label().to_string(),
            model_version,
            objective: stats.objective,
            completed: stats.completed,
            total_incentive: stats.total_incentive,
            per_worker_incentive: stats.per_worker_incentive,
            per_worker_rtt: stats.per_worker_rtt,
            routes: solution.routes,
            degraded,
            degraded_reason,
        };
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json),
            Err(e) => error_response(500, format!("response serialization failed: {e}")),
        }
    }

    /// `POST /v1/feasible` — single `(worker, task)` candidate probe.
    fn feasible(&self, session: &mut SolveSession, req: &Request) -> Response {
        let parsed = if !req.body.is_empty() {
            match body_json::<FeasibleRequest>(&req.body) {
                Ok(p) => p,
                Err(e) => return error_response(400, format!("invalid feasible request: {e}")),
            }
        } else if !req.query.is_empty() {
            let generate = match gen_spec_from_query(&req.query) {
                Ok(g) => g,
                Err(e) => return error_response(400, e),
            };
            let (worker, task) = match (
                query_num::<usize>(&req.query, "worker"),
                query_num::<usize>(&req.query, "task"),
            ) {
                (Ok(Some(w)), Ok(Some(t))) => (w, t),
                (Err(e), _) | (_, Err(e)) => return error_response(400, e),
                _ => {
                    return error_response(400, "query form requires worker=<i> and task=<j>");
                }
            };
            FeasibleRequest { instance: None, generate: Some(generate), worker, task }
        } else {
            return error_response(400, "empty feasible request: send a JSON body or a query form");
        };

        let instance = match materialize(parsed.instance, parsed.generate) {
            Ok(inst) => inst,
            Err(e) => return error_response(400, e),
        };
        // Bounds-check before the probe — SolveSession::probe panics on
        // out-of-range ids by contract.
        if parsed.worker >= instance.n_workers() {
            return error_response(
                400,
                format!(
                    "worker {} out of range (instance has {})",
                    parsed.worker,
                    instance.n_workers()
                ),
            );
        }
        if parsed.task >= instance.n_tasks() {
            return error_response(
                400,
                format!("task {} out of range (instance has {})", parsed.task, instance.n_tasks()),
            );
        }

        let body =
            match session.probe(&instance, WorkerId(parsed.worker), SensingTaskId(parsed.task)) {
                Ok(Some(probe)) => FeasibleResponse {
                    feasible: true,
                    rtt: Some(probe.rtt),
                    delta_in: Some(probe.delta_in),
                    route: Some(probe.route),
                },
                Ok(None) => {
                    FeasibleResponse { feasible: false, rtt: None, delta_in: None, route: None }
                }
                Err(e) => {
                    return error_response(
                        400,
                        format!("worker {} has no feasible mandatory route: {e}", parsed.worker),
                    )
                }
            };
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json),
            Err(e) => error_response(500, format!("response serialization failed: {e}")),
        }
    }

    /// `POST /admin/reload` — swap in a new checkpoint without dropping
    /// in-flight requests.
    fn reload(&self, req: &Request) -> Response {
        if req.body.is_empty() {
            return error_response(400, "reload requires a ModelCheckpoint JSON body");
        }
        let ckpt = match body_json::<ModelCheckpoint>(&req.body) {
            Ok(c) => c,
            Err(e) => return error_response(400, format!("invalid checkpoint: {e}")),
        };
        match self.registry.load(&ckpt) {
            Ok(version) => {
                self.metrics.set_model_version(version);
                // The fresh version starts with a closed breaker (the
                // breaker itself resets lazily on the first admit).
                self.metrics.set_breaker_state(0);
                Response::json(200, format!("{{\"model_version\":{version}}}"))
            }
            Err(e) => {
                self.metrics.record_checkpoint_reject();
                error_response(400, format!("checkpoint rejected: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use crate::registry::LoadedModel;
    use smore::{Critic, Tasnet, TasnetConfig};
    use smore_tsptw::FaultConfig;

    /// A tiny but real model sized for the small delivery grid, so `method
    /// =smore` requests against generated delivery instances decode.
    fn delivery_model(seed: u64) -> LoadedModel {
        let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 5);
        let inst = g.gen_default(&mut SmallRng::seed_from_u64(5));
        let mut cfg = TasnetConfig::for_grid(inst.lattice.grid.rows, inst.lattice.grid.cols);
        cfg.d_model = 16;
        cfg.heads = 2;
        cfg.enc_layers = 1;
        LoadedModel { net: Tasnet::new(cfg, seed), critic: Critic::new(16, seed + 1) }
    }

    fn api() -> Api {
        Api {
            registry: Arc::new(ModelRegistry::new()),
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            breaker: Arc::new(CircuitBreaker::default()),
        }
    }

    fn get(path: &str) -> Request {
        Request { method: Method::Get, path: path.into(), query: String::new(), body: Vec::new() }
    }

    fn post(path: &str, query: &str) -> Request {
        Request { method: Method::Post, path: path.into(), query: query.into(), body: Vec::new() }
    }

    #[test]
    fn healthz_reports_ok_and_version() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &get("/healthz"));
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8(resp.body).expect("utf8"),
            "{\"status\":\"ok\",\"model_version\":0}"
        );
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let api = api();
        let mut s = SolveSession::new();
        assert_eq!(api.handle(&mut s, &get("/nope")).status, 404);
        assert_eq!(api.handle(&mut s, &get("/v1/solve")).status, 405);
        assert_eq!(api.handle(&mut s, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn solve_query_form_runs_a_real_solve() {
        let api = api();
        let mut s = SolveSession::new();
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=greedy");
        let resp = api.handle(&mut s, &req);
        assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn solve_auto_without_checkpoint_falls_back_to_greedy() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &post("/v1/solve", "dataset=delivery&gen_seed=3"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn solve_smore_without_checkpoint_is_409() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &post("/v1/solve", "dataset=delivery&method=smore"));
        assert_eq!(resp.status, 409);
    }

    #[test]
    fn solve_rejects_bad_query_parameters() {
        let api = api();
        let mut s = SolveSession::new();
        for query in [
            "dataset=mars",
            "dataset=delivery&scale=huge",
            "dataset=delivery&gen_seed=banana",
            "dataset=delivery&method=quantum",
            "method=greedy", // no instance source at all
        ] {
            let resp = api.handle(&mut s, &post("/v1/solve", query));
            assert_eq!(resp.status, 400, "query {query:?}");
        }
    }

    #[test]
    fn feasible_query_form_probes_and_bounds_checks() {
        let api = api();
        let mut s = SolveSession::new();
        let ok = api
            .handle(&mut s, &post("/v1/feasible", "dataset=delivery&gen_seed=7&worker=0&task=0"));
        assert_eq!(ok.status, 200);
        let oob = api.handle(
            &mut s,
            &post("/v1/feasible", "dataset=delivery&gen_seed=7&worker=9999&task=0"),
        );
        assert_eq!(oob.status, 400);
        let missing = api.handle(&mut s, &post("/v1/feasible", "dataset=delivery&worker=0"));
        assert_eq!(missing.status, 400);
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let api = api();
        let mut s = SolveSession::new();
        assert!(!api.shutdown.load(Ordering::SeqCst));
        let resp = api.handle(&mut s, &post("/admin/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(api.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn reload_rejects_empty_and_garbage_bodies() {
        let api = api();
        let mut s = SolveSession::new();
        assert_eq!(api.handle(&mut s, &post("/admin/reload", "")).status, 400);
        let garbage = Request {
            method: Method::Post,
            path: "/admin/reload".into(),
            query: String::new(),
            body: b"not json".to_vec(),
        };
        assert_eq!(api.handle(&mut s, &garbage).status, 400);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn healthy_model_answers_are_not_marked_degraded() {
        let api = api();
        api.registry.install(delivery_model(9));
        let mut s = SolveSession::new();
        let resp =
            api.handle(&mut s, &post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore"));
        assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
        let body = String::from_utf8(resp.body).expect("utf8");
        // `degraded` is skip-serialized when false, keeping healthy bodies
        // identical to the pre-breaker wire format.
        assert!(!body.contains("degraded"), "body: {body}");
        assert_eq!(api.breaker.state(), BreakerState::Closed);
        assert_eq!(api.metrics.degraded_total(), 0);
    }

    #[test]
    fn model_failures_trip_the_breaker_and_answers_degrade() {
        let api = api();
        api.registry.install(delivery_model(9));
        // Every inner-solver call fails spuriously: the model episode can
        // never plan initial routes, so each smore request falls back.
        let config = FaultConfig { spurious_infeasible_rate: 1.0, ..FaultConfig::uniform(0.0) };
        let mut s = SolveSession::with_faults(config, 42);
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore");
        for i in 0..3 {
            let resp = api.handle(&mut s, &req);
            assert_eq!(resp.status, 200, "request {i}");
            let body = String::from_utf8(resp.body).expect("utf8");
            assert!(body.contains("\"degraded\":true"), "request {i}: {body}");
            assert!(body.contains("model episode failed"), "request {i}: {body}");
        }
        // Three consecutive failures trip the default breaker open.
        assert_eq!(api.breaker.state(), BreakerState::Open);
        assert_eq!(api.breaker.trips(), 1);
        let resp = api.handle(&mut s, &req);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(body.contains("circuit breaker open"), "body: {body}");
        assert_eq!(api.metrics.degraded_total(), 4);
    }

    #[test]
    fn breaker_probe_success_restores_normal_answers() {
        let api = api();
        api.registry.install(delivery_model(9));
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore");
        let config = FaultConfig { spurious_infeasible_rate: 1.0, ..FaultConfig::uniform(0.0) };
        let mut broken = SolveSession::with_faults(config, 42);
        for _ in 0..3 {
            api.handle(&mut broken, &req);
        }
        assert_eq!(api.breaker.state(), BreakerState::Open);
        // Cool down through the open window on a healthy session; the
        // probe request reaches the model, succeeds, and closes the breaker.
        let mut healthy = SolveSession::new();
        let mut saw_probe_success = false;
        for _ in 0..crate::breaker::BreakerConfig::default().open_requests_before_probe + 1 {
            let resp = api.handle(&mut healthy, &req);
            assert_eq!(resp.status, 200);
            let body = String::from_utf8(resp.body).expect("utf8");
            if !body.contains("degraded") {
                saw_probe_success = true;
                break;
            }
        }
        assert!(saw_probe_success, "a probe should have reached the healthy model");
        assert_eq!(api.breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn identical_requests_yield_identical_bodies_within_a_session() {
        let api = api();
        let mut s1 = SolveSession::new();
        let mut s2 = SolveSession::new();
        let req = post("/v1/solve", "dataset=delivery&gen_seed=11&method=greedy");
        let a = api.handle(&mut s1, &req);
        // Dirty s1 with a different instance, then repeat on both sessions.
        api.handle(&mut s1, &post("/v1/solve", "dataset=tourism&gen_seed=5&method=ratio"));
        let b = api.handle(&mut s1, &req);
        let c = api.handle(&mut s2, &req);
        assert_eq!(a.body, b.body, "same session, interleaved other work");
        assert_eq!(a.body, c.body, "fresh session");
    }
}
