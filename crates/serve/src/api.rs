//! Request routing and endpoint handlers, split into **plan** and
//! **execute** halves so the event loop can coalesce solver work into
//! micro-batches without touching response bytes.
//!
//! `Api::plan` runs on the event-loop thread: it parses and validates a
//! request and either answers it outright (`Plan::Ready` — admin
//! endpoints, health, metrics, every 4xx) or produces a `WorkItem`
//! describing the solver-bound work. Work items flow through the batcher
//! to the worker pool, where `Api::execute` (or the batched
//! model-forward path plus `Api::finish_model_solve`) turns them into
//! responses.
//!
//! A handler is a pure function of (request, registry snapshot, solve
//! session): no ambient clocks, no global state, no randomness beyond the
//! request's own seed. That is what makes the serving determinism contract
//! (identical request bytes → byte-identical response bodies, regardless of
//! which worker thread or micro-batch answers) hold by construction. The
//! model path *always* runs through
//! [`SolveSession::solve_tasnet_batch`] — a solo request is a batch of
//! one — so batch placement can never change a byte. The exception is a
//! request carrying `budget_ms`: its anytime deadline binds the solve to
//! that request's own clock, so it is never batched and keeps the solo
//! deadline-honouring path.
//!
//! Requests carry their instance either inline (JSON body, validated on
//! deserialize by `smore-model`) or as a seeded generator spec — in the
//! body's `gen` field or directly in the query string
//! (`POST /v1/solve?dataset=delivery&gen_seed=7&method=greedy`), which
//! keeps load-generator requests tiny. Generated instances are
//! deterministic in (dataset, scale, seed), so workers serve them from a
//! small per-session `InstanceCache` instead of regenerating per request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore::{GreedySelection, RandomSelection, RatioGreedySelection, SolveSession};
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
use smore_model::{
    evaluate, Deadline, DeadlineSpec, FeasibleRequest, FeasibleResponse, GenerateSpec, Instance,
    ModelCheckpoint, SensingTaskId, Solution, SolveRequest, SolveResponse, WorkerId,
};

use crate::breaker::{Admission, CircuitBreaker};
use crate::events::{EventsPlanner, EventsStore, EventsWork};
use crate::http::{Method, Request, Response};
use crate::metrics::{Endpoint, EventKind, Metrics};
use crate::registry::{LoadedModel, ModelRegistry};

/// Shared handler context: everything a worker thread needs besides its own
/// [`SolveSession`].
pub struct Api {
    /// Hot-swappable checkpoint slot.
    pub registry: Arc<ModelRegistry>,
    /// Server-wide counters.
    pub metrics: Arc<Metrics>,
    /// Set by `POST /admin/shutdown`; the event loop watches it.
    pub shutdown: Arc<AtomicBool>,
    /// Model-path circuit breaker; open means `/v1/solve` model requests
    /// are answered by the baseline fallback with `"degraded": true`.
    pub breaker: Arc<CircuitBreaker>,
    /// Online-world sessions behind `POST /v1/events`.
    pub events: Arc<EventsStore>,
}

/// Paths the router knows (used to distinguish 404 from 405).
const KNOWN_PATHS: [&str; 7] = [
    "/healthz",
    "/metrics",
    "/v1/solve",
    "/v1/feasible",
    "/v1/events",
    "/admin/reload",
    "/admin/shutdown",
];

/// The metrics dimension a path belongs to.
pub fn endpoint_of(path: &str) -> Endpoint {
    match path {
        "/v1/solve" => Endpoint::Solve,
        "/v1/feasible" => Endpoint::Feasible,
        "/v1/events" => Endpoint::Events,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        "/admin/reload" => Endpoint::Reload,
        "/admin/shutdown" => Endpoint::Shutdown,
        _ => Endpoint::Other,
    }
}

/// Escapes `s` as a JSON string literal (quotes included). Error bodies and
/// hand-assembled responses go through this so they stay valid JSON without
/// depending on a serializer.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON error response with the uniform `{"error": ...}` body.
pub fn error_response(status: u16, message: impl AsRef<str>) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", json_string(message.as_ref())))
}

/// Parses a JSON request body (UTF-8 enforced; `serde_json::from_slice` is
/// avoided so dependency stand-ins only need `from_str`).
fn body_json<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// First value for `key` in a query string (`a=1&b=2` form; no
/// percent-decoding — the API's query grammar is plain alphanumerics).
fn query_get<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn query_num<T: std::str::FromStr>(query: &str, key: &str) -> Result<Option<T>, String> {
    match query_get(query, key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("query parameter {key}={raw:?} is not a number")),
    }
}

/// Builds a [`GenerateSpec`] from query parameters (`dataset` mandatory,
/// `scale` and `gen_seed` optional).
fn gen_spec_from_query(query: &str) -> Result<GenerateSpec, String> {
    let dataset = query_get(query, "dataset")
        .ok_or("query form requires dataset=<delivery|tourism|lade>")?
        .to_string();
    let scale = query_get(query, "scale").map(str::to_string);
    let seed = query_num::<u64>(query, "gen_seed")?.unwrap_or(0);
    Ok(GenerateSpec { dataset, scale, seed })
}

/// Where a work item's instance comes from. Spec validation happens at plan
/// time; materialization is deferred to the worker so generation cost (and
/// the cache that removes it) stays off the event-loop thread.
pub(crate) enum InstanceSource {
    /// The client sent the instance inline.
    Inline(Arc<Instance>),
    /// A validated seeded-generator spec; deterministic in its key.
    Generated {
        /// Dataset preset.
        kind: DatasetKind,
        /// Scale preset.
        scale: Scale,
        /// Generator seed.
        seed: u64,
    },
}

/// Resolves the instance reference of a request into a validated source:
/// inline XOR generated, with every spec error caught here (plan time).
fn plan_source(
    instance: Option<Instance>,
    generate: Option<GenerateSpec>,
) -> Result<InstanceSource, String> {
    match (instance, generate) {
        (Some(inst), None) => Ok(InstanceSource::Inline(Arc::new(inst))),
        (None, Some(spec)) => {
            let kind = match spec.dataset.as_str() {
                "delivery" => DatasetKind::Delivery,
                "tourism" => DatasetKind::Tourism,
                "lade" => DatasetKind::LaDe,
                other => {
                    return Err(format!(
                        "unknown dataset {other:?} (expected delivery|tourism|lade)"
                    ))
                }
            };
            let scale = match spec.scale.as_deref().unwrap_or("small") {
                "small" => Scale::Small,
                "paper" => Scale::Paper,
                other => return Err(format!("unknown scale {other:?} (expected small|paper)")),
            };
            Ok(InstanceSource::Generated { kind, scale, seed: spec.seed })
        }
        (Some(_), Some(_)) => Err("provide exactly one of `instance` and `gen`, not both".into()),
        (None, None) => Err("provide one of `instance` (inline) or `gen` (generator spec)".into()),
    }
}

/// A small per-worker cache of generated instances. Generation is
/// deterministic in `(dataset, scale, seed)`, so serving a cached copy is
/// byte-transparent; it removes the dominant per-request cost of the
/// query-form fast path (generating a small instance costs ~5× a
/// feasibility probe). Linear scan over a `Vec` keeps the serve crate
/// inside the D1 no-hash-containers contract; at ≤ 32 entries the scan is
/// cheaper than hashing anyway.
pub(crate) struct InstanceCache {
    entries: Vec<((DatasetKind, Scale, u64), Arc<Instance>)>,
    cap: usize,
}

impl InstanceCache {
    /// A cache evicting least-recently-used entries beyond `cap`.
    pub(crate) fn new(cap: usize) -> Self {
        InstanceCache { entries: Vec::new(), cap: cap.max(1) }
    }

    /// The instance a source refers to, generated at most once per key
    /// while cached. Inline sources pass through untouched.
    pub(crate) fn materialize(&mut self, source: &InstanceSource) -> Arc<Instance> {
        match *source {
            InstanceSource::Inline(ref inst) => Arc::clone(inst),
            InstanceSource::Generated { kind, scale, seed } => {
                let key = (kind, scale, seed);
                if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
                    // Move-to-back LRU: the Vec's tail is most recent.
                    let entry = self.entries.remove(pos);
                    let inst = Arc::clone(&entry.1);
                    self.entries.push(entry);
                    return inst;
                }
                let generator = InstanceGenerator::new(DatasetSpec::of(kind, scale), seed);
                let inst = Arc::new(generator.gen_default(&mut SmallRng::seed_from_u64(seed)));
                if self.entries.len() >= self.cap {
                    self.entries.remove(0);
                }
                self.entries.push((key, Arc::clone(&inst)));
                inst
            }
        }
    }
}

/// The selection method a solve request resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SolveMethod {
    /// TASNet model decoding (with greedy fallback).
    Smore,
    /// Greedy marginal-gain selection.
    Greedy,
    /// Ratio-greedy selection.
    Ratio,
    /// Seeded random selection.
    Random,
}

impl SolveMethod {
    fn label(self) -> &'static str {
        match self {
            SolveMethod::Smore => "smore",
            SolveMethod::Greedy => "greedy",
            SolveMethod::Ratio => "ratio",
            SolveMethod::Random => "random",
        }
    }
}

/// The solver-bound half of a planned request.
pub(crate) enum WorkKind {
    /// Heuristic `/v1/solve` (greedy / ratio / random).
    Policy {
        /// Which heuristic.
        method: SolveMethod,
        /// Seed for `method=random`.
        seed: u64,
        /// Optional per-request deadline budget.
        budget_ms: Option<u64>,
    },
    /// Model-path `/v1/solve` against a checkpoint snapshot.
    Model {
        /// The snapshot taken at plan time (hot reloads do not move it).
        model: Arc<LoadedModel>,
        /// Version of that snapshot, echoed in the response.
        version: u64,
        /// False when the circuit breaker refused admission: skip the
        /// model and serve the degraded greedy fallback.
        admitted: bool,
        /// Optional per-request deadline budget.
        budget_ms: Option<u64>,
    },
    /// `/v1/feasible` candidate probe.
    Probe {
        /// Worker index (bounds-checked against the instance at exec).
        worker: usize,
        /// Task index (bounds-checked against the instance at exec).
        task: usize,
    },
    /// `/v1/events` batch against the session store. Executes solo
    /// (never model-batchable); the item's `source` is only materialized
    /// for session-creating (`seq == 0`) batches.
    Events(Box<EventsWork>),
}

/// A validated, solver-bound unit of work.
pub(crate) struct WorkItem {
    /// Metrics dimension (Solve or Feasible).
    pub(crate) endpoint: Endpoint,
    /// Where the instance comes from.
    pub(crate) source: InstanceSource,
    /// What to run against it.
    pub(crate) kind: WorkKind,
}

impl WorkItem {
    /// The model snapshot this item can join a micro-batch under, if any:
    /// admitted model solves without a deadline budget.
    pub(crate) fn batch_model(&self) -> Option<(&Arc<LoadedModel>, u64)> {
        match &self.kind {
            WorkKind::Model { model, version, admitted: true, budget_ms: None } => {
                Some((model, *version))
            }
            _ => None,
        }
    }
}

/// What planning a request produced.
pub(crate) enum Plan {
    /// The response is already determined; write it now.
    Ready(Response),
    /// Solver-bound work for the batcher + worker pool.
    Work(Box<WorkItem>),
}

impl Api {
    /// Routes one parsed request: answers it directly when no solver work
    /// is needed, otherwise returns the validated work item.
    pub(crate) fn plan(&self, req: &Request) -> Plan {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/healthz") => Plan::Ready(Response::json(
                200,
                format!("{{\"status\":\"ok\",\"model_version\":{}}}", self.registry.version()),
            )),
            (Method::Get, "/metrics") => Plan::Ready(Response::text(200, self.metrics.render())),
            (Method::Post, "/v1/solve") => self.plan_solve(req),
            (Method::Post, "/v1/feasible") => self.plan_feasible(req),
            (Method::Post, "/v1/events") => self.plan_events(req),
            (Method::Post, "/admin/reload") => Plan::Ready(self.reload(req)),
            (Method::Post, "/admin/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                Plan::Ready(Response::json(200, "{\"status\":\"shutting down\"}"))
            }
            (_, path) if KNOWN_PATHS.contains(&path) => {
                Plan::Ready(error_response(405, format!("method not allowed for {path}")))
            }
            (_, path) => Plan::Ready(error_response(404, format!("no such endpoint: {path}"))),
        }
    }

    /// Routes one parsed request to a finished response — the synchronous
    /// path for unit tests and embedded callers without a worker pool.
    pub fn handle(&self, session: &mut SolveSession, req: &Request) -> Response {
        match self.plan(req) {
            Plan::Ready(response) => response,
            Plan::Work(item) => self.execute(session, &item, &mut InstanceCache::new(4)),
        }
    }

    /// `POST /v1/solve` — parse, validate, and classify.
    fn plan_solve(&self, req: &Request) -> Plan {
        let parsed = if !req.body.is_empty() {
            match body_json::<SolveRequest>(&req.body) {
                Ok(p) => p,
                Err(e) => {
                    return Plan::Ready(error_response(400, format!("invalid solve request: {e}")))
                }
            }
        } else if !req.query.is_empty() {
            let generate = match gen_spec_from_query(&req.query) {
                Ok(g) => g,
                Err(e) => return Plan::Ready(error_response(400, e)),
            };
            let budget_ms = match query_num::<u64>(&req.query, "budget_ms") {
                Ok(b) => b,
                Err(e) => return Plan::Ready(error_response(400, e)),
            };
            let seed = match query_num::<u64>(&req.query, "seed") {
                Ok(s) => s,
                Err(e) => return Plan::Ready(error_response(400, e)),
            };
            SolveRequest {
                instance: None,
                generate: Some(generate),
                method: query_get(&req.query, "method").map(str::to_string),
                budget_ms,
                seed,
            }
        } else {
            return Plan::Ready(error_response(
                400,
                "empty solve request: send a JSON body or a query form",
            ));
        };

        let method = match parsed.method.as_deref().unwrap_or("auto") {
            "smore" => SolveMethod::Smore,
            "greedy" => SolveMethod::Greedy,
            "ratio" => SolveMethod::Ratio,
            "random" => SolveMethod::Random,
            "auto" => {
                if self.registry.version() > 0 {
                    SolveMethod::Smore
                } else {
                    SolveMethod::Greedy
                }
            }
            other => {
                return Plan::Ready(error_response(
                    400,
                    format!("unknown method {other:?} (expected smore|greedy|ratio|random|auto)"),
                ))
            }
        };

        let source = match plan_source(parsed.instance, parsed.generate) {
            Ok(source) => source,
            Err(e) => return Plan::Ready(error_response(400, e)),
        };

        let kind = match method {
            SolveMethod::Smore => {
                let Some((model, version)) = self.registry.snapshot() else {
                    return Plan::Ready(error_response(
                        409,
                        "method smore requires a loaded checkpoint (POST /admin/reload first)",
                    ));
                };
                let admitted = self.breaker.admit(version) != Admission::Degraded;
                WorkKind::Model { model, version, admitted, budget_ms: parsed.budget_ms }
            }
            method => WorkKind::Policy {
                method,
                seed: parsed.seed.unwrap_or(0),
                budget_ms: parsed.budget_ms,
            },
        };
        Plan::Work(Box::new(WorkItem { endpoint: Endpoint::Solve, source, kind }))
    }

    /// `POST /v1/feasible` — parse and validate the probe form.
    fn plan_feasible(&self, req: &Request) -> Plan {
        let parsed = if !req.body.is_empty() {
            match body_json::<FeasibleRequest>(&req.body) {
                Ok(p) => p,
                Err(e) => {
                    return Plan::Ready(error_response(
                        400,
                        format!("invalid feasible request: {e}"),
                    ))
                }
            }
        } else if !req.query.is_empty() {
            let generate = match gen_spec_from_query(&req.query) {
                Ok(g) => g,
                Err(e) => return Plan::Ready(error_response(400, e)),
            };
            let (worker, task) = match (
                query_num::<usize>(&req.query, "worker"),
                query_num::<usize>(&req.query, "task"),
            ) {
                (Ok(Some(w)), Ok(Some(t))) => (w, t),
                (Err(e), _) | (_, Err(e)) => return Plan::Ready(error_response(400, e)),
                _ => {
                    return Plan::Ready(error_response(
                        400,
                        "query form requires worker=<i> and task=<j>",
                    ));
                }
            };
            FeasibleRequest { instance: None, generate: Some(generate), worker, task }
        } else {
            return Plan::Ready(error_response(
                400,
                "empty feasible request: send a JSON body or a query form",
            ));
        };

        let source = match plan_source(parsed.instance, parsed.generate) {
            Ok(source) => source,
            Err(e) => return Plan::Ready(error_response(400, e)),
        };
        Plan::Work(Box::new(WorkItem {
            endpoint: Endpoint::Feasible,
            source,
            kind: WorkKind::Probe { worker: parsed.worker, task: parsed.task },
        }))
    }

    /// `POST /v1/events` — parse the envelope (hand-rolled, depth-capped;
    /// no serde on the hot path) and validate the instance source. Only
    /// session-creating (`seq == 0`) envelopes may carry one.
    fn plan_events(&self, req: &Request) -> Plan {
        if req.body.is_empty() {
            return Plan::Ready(error_response(400, "empty events request: send a JSON envelope"));
        }
        let envelope = match EventsPlanner::parse(&req.body) {
            Ok(e) => e,
            Err(e) => {
                return Plan::Ready(error_response(400, format!("invalid events envelope: {e}")))
            }
        };
        let instance = match envelope.instance_json.as_deref() {
            None => None,
            Some(text) => match serde_json::from_str::<Instance>(text) {
                Ok(inst) => Some(inst),
                Err(e) => {
                    return Plan::Ready(error_response(
                        400,
                        format!("invalid inline instance: {e}"),
                    ))
                }
            },
        };
        let source = if envelope.seq == 0 {
            match plan_source(instance, envelope.generate) {
                Ok(source) => source,
                Err(e) => return Plan::Ready(error_response(400, e)),
            }
        } else {
            if instance.is_some() || envelope.generate.is_some() {
                return Plan::Ready(error_response(
                    400,
                    "an instance source (`instance` or `gen`) is only allowed at seq 0",
                ));
            }
            // Never materialized: execute_events only touches the source
            // on session-creating batches.
            InstanceSource::Generated { kind: DatasetKind::Delivery, scale: Scale::Small, seed: 0 }
        };
        Plan::Work(Box::new(WorkItem {
            endpoint: Endpoint::Events,
            source,
            kind: WorkKind::Events(Box::new(EventsWork {
                session: envelope.session,
                seq: envelope.seq,
                mode: envelope.mode,
                penalty: envelope.penalty,
                events: envelope.events,
            })),
        }))
    }

    /// Executes one work item on a worker session — the solo path. Batched
    /// model items run the forward together via
    /// [`SolveSession::solve_tasnet_batch`] and scatter through
    /// `Api::finish_model_solve`; a batchable item executed here still
    /// runs as a batch of one, so its bytes cannot depend on placement.
    pub(crate) fn execute(
        &self,
        session: &mut SolveSession,
        item: &WorkItem,
        cache: &mut InstanceCache,
    ) -> Response {
        // Events batches run against the session store, not a solver
        // session, and only need an instance when creating a session.
        if let WorkKind::Events(ref work) = item.kind {
            return self.execute_events(work, &item.source, cache);
        }
        let instance = cache.materialize(&item.source);
        match item.kind {
            WorkKind::Policy { method, seed, budget_ms } => {
                let deadline = DeadlineSpec { budget_ms }.start();
                let solution = match method {
                    SolveMethod::Ratio => {
                        session.solve_policy(&instance, &mut RatioGreedySelection, deadline)
                    }
                    SolveMethod::Random => {
                        let mut policy = RandomSelection::new(seed);
                        session.solve_policy(&instance, &mut policy, deadline)
                    }
                    // Smore plans as WorkKind::Model, never Policy.
                    SolveMethod::Greedy | SolveMethod::Smore => {
                        session.solve_policy(&instance, &mut GreedySelection, deadline)
                    }
                };
                self.solution_response(method.label(), 0, &instance, solution, false, None)
            }
            WorkKind::Model { ref model, version, admitted, budget_ms } => {
                let deadline = DeadlineSpec { budget_ms }.start();
                let forward = if !admitted {
                    None
                } else if budget_ms.is_some() {
                    // Deadline-bound: the solo anytime path.
                    session.try_solve_tasnet(&model.net, &model.critic, &instance, deadline)
                } else {
                    // The batch path with a batch of one: identical bytes
                    // to the same request answered inside a larger batch.
                    session.solve_tasnet_batch(&model.net, &[&instance]).pop().flatten()
                };
                self.finish_model_solve(session, version, admitted, deadline, &instance, forward)
            }
            WorkKind::Probe { worker, task } => {
                self.probe_response(session, &instance, worker, task)
            }
            // Handled above; unreachable here.
            WorkKind::Events(_) => error_response(500, "events item reached the solver path"),
        }
    }

    /// Executes one events batch: applies it to the session store, records
    /// the online-subsystem metrics, and serializes the response.
    fn execute_events(
        &self,
        work: &EventsWork,
        source: &InstanceSource,
        cache: &mut InstanceCache,
    ) -> Response {
        for event in &work.events {
            self.metrics.record_event(EventKind::of(event));
        }
        let instance = (work.seq == 0).then(|| cache.materialize(source));
        match self.events.apply(work, instance) {
            Ok((body, replan_ms)) => {
                self.metrics.record_events_rejected(body.rejected.len() as u64);
                self.metrics.record_replan_latency(replan_ms);
                self.metrics.set_committed_prefix(body.committed_prefix);
                match serde_json::to_string(&body) {
                    Ok(json) => Response::json(200, json),
                    Err(e) => error_response(500, format!("response serialization failed: {e}")),
                }
            }
            Err((status, message)) => error_response(status, message),
        }
    }

    /// Turns a model forward outcome into the response: success closes the
    /// breaker window, a failed episode falls back to greedy (on the
    /// *remaining* deadline) and reports `degraded`. Shared by the solo
    /// path and the micro-batch scatter.
    pub(crate) fn finish_model_solve(
        &self,
        session: &mut SolveSession,
        version: u64,
        admitted: bool,
        deadline: Deadline,
        instance: &Instance,
        forward: Option<Solution>,
    ) -> Response {
        let (solution, degraded, reason) = match (admitted, forward) {
            (true, Some(solution)) => {
                self.breaker.on_success(version);
                (solution, false, None)
            }
            (true, None) => {
                if self.breaker.on_failure(version) {
                    self.metrics.record_breaker_trip();
                }
                (
                    session.solve_policy(instance, &mut GreedySelection, deadline),
                    true,
                    Some("model episode failed: served by greedy fallback".to_string()),
                )
            }
            (false, _) => (
                session.solve_policy(instance, &mut GreedySelection, deadline),
                true,
                Some("circuit breaker open: served by greedy fallback".to_string()),
            ),
        };
        self.metrics.set_breaker_state(self.breaker.state().gauge());
        if degraded {
            self.metrics.record_degraded();
        }
        self.solution_response("smore", version, instance, solution, degraded, reason)
    }

    /// Validates and serializes a finished solve.
    fn solution_response(
        &self,
        method: &str,
        model_version: u64,
        instance: &Instance,
        solution: Solution,
        degraded: bool,
        degraded_reason: Option<String>,
    ) -> Response {
        let stats = match evaluate(instance, &solution) {
            Ok(stats) => stats,
            // Solvers return validated solutions; reaching this is a server
            // bug, not a client error.
            Err(e) => return error_response(500, format!("solution failed validation: {e}")),
        };
        let body = SolveResponse {
            method: method.to_string(),
            model_version,
            objective: stats.objective,
            completed: stats.completed,
            total_incentive: stats.total_incentive,
            per_worker_incentive: stats.per_worker_incentive,
            per_worker_rtt: stats.per_worker_rtt,
            routes: solution.routes,
            degraded,
            degraded_reason,
        };
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json),
            Err(e) => error_response(500, format!("response serialization failed: {e}")),
        }
    }

    /// Executes a `(worker, task)` candidate probe.
    fn probe_response(
        &self,
        session: &mut SolveSession,
        instance: &Instance,
        worker: usize,
        task: usize,
    ) -> Response {
        // Bounds-check before the probe — SolveSession::probe panics on
        // out-of-range ids by contract.
        if worker >= instance.n_workers() {
            return error_response(
                400,
                format!("worker {} out of range (instance has {})", worker, instance.n_workers()),
            );
        }
        if task >= instance.n_tasks() {
            return error_response(
                400,
                format!("task {} out of range (instance has {})", task, instance.n_tasks()),
            );
        }

        let body = match session.probe(instance, WorkerId(worker), SensingTaskId(task)) {
            Ok(Some(probe)) => FeasibleResponse {
                feasible: true,
                rtt: Some(probe.rtt),
                delta_in: Some(probe.delta_in),
                route: Some(probe.route),
            },
            Ok(None) => {
                FeasibleResponse { feasible: false, rtt: None, delta_in: None, route: None }
            }
            Err(e) => {
                return error_response(
                    400,
                    format!("worker {} has no feasible mandatory route: {e}", worker),
                )
            }
        };
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json),
            Err(e) => error_response(500, format!("response serialization failed: {e}")),
        }
    }

    /// `POST /admin/reload` — swap in a new checkpoint without dropping
    /// in-flight requests.
    fn reload(&self, req: &Request) -> Response {
        if req.body.is_empty() {
            return error_response(400, "reload requires a ModelCheckpoint JSON body");
        }
        let ckpt = match body_json::<ModelCheckpoint>(&req.body) {
            Ok(c) => c,
            Err(e) => return error_response(400, format!("invalid checkpoint: {e}")),
        };
        match self.registry.load(&ckpt) {
            Ok(version) => {
                self.metrics.set_model_version(version);
                // The fresh version starts with a closed breaker (the
                // breaker itself resets lazily on the first admit).
                self.metrics.set_breaker_state(0);
                Response::json(200, format!("{{\"model_version\":{version}}}"))
            }
            Err(e) => {
                self.metrics.record_checkpoint_reject();
                error_response(400, format!("checkpoint rejected: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use crate::registry::LoadedModel;
    use smore::{Critic, Tasnet, TasnetConfig};
    use smore_tsptw::FaultConfig;

    /// A tiny but real model sized for the small delivery grid, so `method
    /// =smore` requests against generated delivery instances decode.
    fn delivery_model(seed: u64) -> LoadedModel {
        let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 5);
        let inst = g.gen_default(&mut SmallRng::seed_from_u64(5));
        let mut cfg = TasnetConfig::for_grid(inst.lattice.grid.rows, inst.lattice.grid.cols);
        cfg.d_model = 16;
        cfg.heads = 2;
        cfg.enc_layers = 1;
        LoadedModel { net: Tasnet::new(cfg, seed), critic: Critic::new(16, seed + 1) }
    }

    fn api() -> Api {
        Api {
            registry: Arc::new(ModelRegistry::new()),
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            breaker: Arc::new(CircuitBreaker::default()),
            events: Arc::new(EventsStore::new()),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            query: String::new(),
            body: Vec::new(),
            close: false,
        }
    }

    fn post(path: &str, query: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            query: query.into(),
            body: Vec::new(),
            close: false,
        }
    }

    #[test]
    fn healthz_reports_ok_and_version() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &get("/healthz"));
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8(resp.body).expect("utf8"),
            "{\"status\":\"ok\",\"model_version\":0}"
        );
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let api = api();
        let mut s = SolveSession::new();
        assert_eq!(api.handle(&mut s, &get("/nope")).status, 404);
        assert_eq!(api.handle(&mut s, &get("/v1/solve")).status, 405);
        assert_eq!(api.handle(&mut s, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn solve_query_form_runs_a_real_solve() {
        let api = api();
        let mut s = SolveSession::new();
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=greedy");
        let resp = api.handle(&mut s, &req);
        assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn solve_auto_without_checkpoint_falls_back_to_greedy() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &post("/v1/solve", "dataset=delivery&gen_seed=3"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn solve_smore_without_checkpoint_is_409() {
        let api = api();
        let mut s = SolveSession::new();
        let resp = api.handle(&mut s, &post("/v1/solve", "dataset=delivery&method=smore"));
        assert_eq!(resp.status, 409);
    }

    #[test]
    fn solve_rejects_bad_query_parameters() {
        let api = api();
        let mut s = SolveSession::new();
        for query in [
            "dataset=mars",
            "dataset=delivery&scale=huge",
            "dataset=delivery&gen_seed=banana",
            "dataset=delivery&method=quantum",
            "method=greedy", // no instance source at all
        ] {
            let resp = api.handle(&mut s, &post("/v1/solve", query));
            assert_eq!(resp.status, 400, "query {query:?}");
        }
    }

    #[test]
    fn feasible_query_form_probes_and_bounds_checks() {
        let api = api();
        let mut s = SolveSession::new();
        let ok = api
            .handle(&mut s, &post("/v1/feasible", "dataset=delivery&gen_seed=7&worker=0&task=0"));
        assert_eq!(ok.status, 200);
        let oob = api.handle(
            &mut s,
            &post("/v1/feasible", "dataset=delivery&gen_seed=7&worker=9999&task=0"),
        );
        assert_eq!(oob.status, 400);
        let missing = api.handle(&mut s, &post("/v1/feasible", "dataset=delivery&worker=0"));
        assert_eq!(missing.status, 400);
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let api = api();
        let mut s = SolveSession::new();
        assert!(!api.shutdown.load(Ordering::SeqCst));
        let resp = api.handle(&mut s, &post("/admin/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(api.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn reload_rejects_empty_and_garbage_bodies() {
        let api = api();
        let mut s = SolveSession::new();
        assert_eq!(api.handle(&mut s, &post("/admin/reload", "")).status, 400);
        let garbage = Request {
            method: Method::Post,
            path: "/admin/reload".into(),
            query: String::new(),
            body: b"not json".to_vec(),
            close: false,
        };
        assert_eq!(api.handle(&mut s, &garbage).status, 400);
    }

    #[test]
    fn events_endpoint_streams_batches_in_sequence() {
        let api = api();
        let mut s = SolveSession::new();
        let req = |json: &str| Request {
            method: Method::Post,
            path: "/v1/events".into(),
            query: String::new(),
            body: json.as_bytes().to_vec(),
            close: false,
        };
        let create = r#"{"session":"s","seq":0,"gen":{"dataset":"delivery","seed":7},
            "events":[{"type":"tick","now":0}]}"#;
        let r0 = api.handle(&mut s, &req(create));
        assert_eq!(r0.status, 200, "body: {:?}", String::from_utf8_lossy(&r0.body));
        let text = String::from_utf8(r0.body).expect("utf8");
        assert!(text.contains("\"version\":1"), "{text}");
        assert!(text.contains("\"checksum\":"), "{text}");
        // Out-of-order sequence numbers are a structured 400.
        let bad = api.handle(&mut s, &req(r#"{"session":"s","seq":7,"events":[]}"#));
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8_lossy(&bad.body).contains("expected seq 1"));
        let r1 = api
            .handle(&mut s, &req(r#"{"session":"s","seq":1,"events":[{"type":"tick","now":5}]}"#));
        assert_eq!(r1.status, 200);
        // Unknown sessions are a 404; instance sources after seq 0 a 400.
        assert_eq!(api.handle(&mut s, &req(r#"{"session":"z","seq":1,"events":[]}"#)).status, 404);
        let late_gen = r#"{"session":"s","seq":2,"gen":{"dataset":"delivery"},"events":[]}"#;
        assert_eq!(api.handle(&mut s, &req(late_gen)).status, 400);
        // Garbage bodies are 400s, and the event metrics recorded.
        assert_eq!(api.handle(&mut s, &req("{nope")).status, 400);
        assert_eq!(api.handle(&mut s, &req("")).status, 400);
        assert_eq!(api.metrics.events_total(EventKind::Tick), 2);
        assert!(api.metrics.replan_count() >= 2);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn plan_classifies_requests() {
        let api = api();
        // Admin/health/metrics and validation errors are Ready.
        assert!(matches!(api.plan(&get("/healthz")), Plan::Ready(_)));
        assert!(matches!(api.plan(&get("/metrics")), Plan::Ready(_)));
        assert!(matches!(api.plan(&post("/v1/solve", "dataset=mars")), Plan::Ready(_)));
        // Heuristic solves and probes are Work but never batchable.
        let Plan::Work(item) = api.plan(&post("/v1/solve", "dataset=delivery&method=greedy"))
        else {
            panic!("greedy solve must be Work");
        };
        assert!(item.batch_model().is_none());
        let Plan::Work(probe) = api.plan(&post("/v1/feasible", "dataset=delivery&worker=0&task=0"))
        else {
            panic!("probe must be Work");
        };
        assert!(probe.batch_model().is_none());
        assert_eq!(probe.endpoint, Endpoint::Feasible);
        // Model solves without a budget batch under the snapshot version;
        // a budget_ms makes the same request solo.
        api.registry.install(delivery_model(9));
        let Plan::Work(model) = api.plan(&post("/v1/solve", "dataset=delivery&method=smore"))
        else {
            panic!("model solve must be Work");
        };
        let (_, version) = model.batch_model().expect("admitted, budget-free: batchable");
        assert_eq!(version, 1);
        let Plan::Work(budgeted) =
            api.plan(&post("/v1/solve", "dataset=delivery&method=smore&budget_ms=50"))
        else {
            panic!("budgeted model solve must be Work");
        };
        assert!(budgeted.batch_model().is_none(), "deadline requests never batch");
    }

    #[test]
    fn instance_cache_returns_identical_instances_and_evicts_lru() {
        let mut cache = InstanceCache::new(2);
        let source = |seed| InstanceSource::Generated {
            kind: DatasetKind::Delivery,
            scale: Scale::Small,
            seed,
        };
        let a1 = cache.materialize(&source(1));
        let a2 = cache.materialize(&source(1));
        assert!(Arc::ptr_eq(&a1, &a2), "hit must serve the cached Arc");
        // Fill past capacity: seed 1 is the LRU victim after 2 and 3.
        let _ = cache.materialize(&source(2));
        let _ = cache.materialize(&source(3));
        let a3 = cache.materialize(&source(1));
        assert!(!Arc::ptr_eq(&a1, &a3), "evicted entry must be regenerated");
    }

    #[test]
    fn healthy_model_answers_are_not_marked_degraded() {
        let api = api();
        api.registry.install(delivery_model(9));
        let mut s = SolveSession::new();
        let resp =
            api.handle(&mut s, &post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore"));
        assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
        let body = String::from_utf8(resp.body).expect("utf8");
        // `degraded` is skip-serialized when false, keeping healthy bodies
        // identical to the pre-breaker wire format.
        assert!(!body.contains("degraded"), "body: {body}");
        assert_eq!(api.breaker.state(), BreakerState::Closed);
        assert_eq!(api.metrics.degraded_total(), 0);
    }

    #[test]
    fn model_failures_trip_the_breaker_and_answers_degrade() {
        let api = api();
        api.registry.install(delivery_model(9));
        // Every inner-solver call fails spuriously: the model episode can
        // never plan initial routes, so each smore request falls back.
        let config = FaultConfig { spurious_infeasible_rate: 1.0, ..FaultConfig::uniform(0.0) };
        let mut s = SolveSession::with_faults(config, 42);
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore");
        for i in 0..3 {
            let resp = api.handle(&mut s, &req);
            assert_eq!(resp.status, 200, "request {i}");
            let body = String::from_utf8(resp.body).expect("utf8");
            assert!(body.contains("\"degraded\":true"), "request {i}: {body}");
            assert!(body.contains("model episode failed"), "request {i}: {body}");
        }
        // Three consecutive failures trip the default breaker open.
        assert_eq!(api.breaker.state(), BreakerState::Open);
        assert_eq!(api.breaker.trips(), 1);
        let resp = api.handle(&mut s, &req);
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(body.contains("circuit breaker open"), "body: {body}");
        assert_eq!(api.metrics.degraded_total(), 4);
    }

    #[test]
    fn breaker_probe_success_restores_normal_answers() {
        let api = api();
        api.registry.install(delivery_model(9));
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore");
        let config = FaultConfig { spurious_infeasible_rate: 1.0, ..FaultConfig::uniform(0.0) };
        let mut broken = SolveSession::with_faults(config, 42);
        for _ in 0..3 {
            api.handle(&mut broken, &req);
        }
        assert_eq!(api.breaker.state(), BreakerState::Open);
        // Cool down through the open window on a healthy session; the
        // probe request reaches the model, succeeds, and closes the breaker.
        let mut healthy = SolveSession::new();
        let mut saw_probe_success = false;
        for _ in 0..crate::breaker::BreakerConfig::default().open_requests_before_probe + 1 {
            let resp = api.handle(&mut healthy, &req);
            assert_eq!(resp.status, 200);
            let body = String::from_utf8(resp.body).expect("utf8");
            if !body.contains("degraded") {
                saw_probe_success = true;
                break;
            }
        }
        assert!(saw_probe_success, "a probe should have reached the healthy model");
        assert_eq!(api.breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn identical_requests_yield_identical_bodies_within_a_session() {
        let api = api();
        let mut s1 = SolveSession::new();
        let mut s2 = SolveSession::new();
        let req = post("/v1/solve", "dataset=delivery&gen_seed=11&method=greedy");
        let a = api.handle(&mut s1, &req);
        // Dirty s1 with a different instance, then repeat on both sessions.
        api.handle(&mut s1, &post("/v1/solve", "dataset=tourism&gen_seed=5&method=ratio"));
        let b = api.handle(&mut s1, &req);
        let c = api.handle(&mut s2, &req);
        assert_eq!(a.body, b.body, "same session, interleaved other work");
        assert_eq!(a.body, c.body, "fresh session");
    }

    #[test]
    fn batched_model_solve_matches_solo_byte_for_byte() {
        let api = api();
        api.registry.install(delivery_model(9));
        let mut s = SolveSession::new();
        // Solo answer through the public path (a batch of one inside).
        let req = post("/v1/solve", "dataset=delivery&gen_seed=7&method=smore");
        let solo = api.handle(&mut s, &req);
        assert_eq!(solo.status, 200);
        // The same request as one row of a 4-wide batch: forward all rows
        // through the session batch primitive, then scatter row 0.
        let Plan::Work(item) = api.plan(&req) else { panic!("smore solve must be Work") };
        let (model, version) = {
            let (m, v) = item.batch_model().expect("batchable");
            (Arc::clone(m), v)
        };
        let mut cache = InstanceCache::new(8);
        let instance = cache.materialize(&item.source);
        let others: Vec<Arc<Instance>> = (0..3)
            .map(|seed| {
                cache.materialize(&InstanceSource::Generated {
                    kind: DatasetKind::Delivery,
                    scale: Scale::Small,
                    seed,
                })
            })
            .collect();
        let mut refs: Vec<&Instance> = vec![&instance];
        refs.extend(others.iter().map(|a| a.as_ref()));
        let rows = s.solve_tasnet_batch(&model.net, &refs);
        assert_eq!(rows.len(), 4);
        let row0 = rows.into_iter().next().expect("row 0");
        let batched = api.finish_model_solve(
            &mut s,
            version,
            true,
            DeadlineSpec { budget_ms: None }.start(),
            &instance,
            row0,
        );
        assert_eq!(solo.body, batched.body, "batch placement changed response bytes");
    }
}
