//! Property-based tests for the USMDW problem model.

use proptest::prelude::*;
use smore_geo::{GridSpec, Point, TravelTimeModel};
use smore_model::{
    evaluate, schedule_route, Instance, Route, SensingLattice, SensingTaskId, Solution, Stop,
    TravelTask, Worker, WorkerId,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..1200.0, 0.0f64..1200.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_worker() -> impl Strategy<Value = Worker> {
    (arb_point(), arb_point(), prop::collection::vec(arb_point(), 0..5)).prop_map(
        |(o, d, stops)| {
            let tasks = stops.into_iter().map(|p| TravelTask::new(p, 10.0)).collect();
            Worker::new(o, d, 0.0, 240.0, tasks)
        },
    )
}

fn lattice() -> SensingLattice {
    SensingLattice {
        grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
        horizon: 240.0,
        window_len: 60.0,
        service: 5.0,
    }
}

fn instance(workers: Vec<Worker>) -> Instance {
    Instance::from_lattice(workers, lattice(), 300.0, 1.0, TravelTimeModel::PAPER_DEFAULT, 0.5)
}

proptest! {
    /// The TSP reference route is never longer than any explicit route over
    /// the same stops, so incentives are always non-negative.
    #[test]
    fn base_rtt_is_lower_bound(w in arb_worker(), seed in 0u64..1000) {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let inst = instance(vec![w.clone()]);
        let mut order: Vec<usize> = (0..w.travel_tasks.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed));
        let route = Route::new(order.into_iter().map(Stop::Travel).collect());
        if let Ok(s) = schedule_route(&w, &route, &inst.travel, &|_| unreachable!()) {
            prop_assert!(s.rtt + 1e-6 >= inst.base_rtt[0]);
            prop_assert!(inst.incentive(WorkerId(0), s.rtt) >= 0.0);
        }
    }

    /// Scheduling is deterministic and rtt decomposes into the final arrival.
    #[test]
    fn schedule_consistency(w in arb_worker()) {
        let inst = instance(vec![w.clone()]);
        let route = Route::new((0..w.travel_tasks.len()).map(Stop::Travel).collect());
        if let Ok(s) = schedule_route(&w, &route, &inst.travel, &|_| unreachable!()) {
            prop_assert!((s.final_arrival - w.earliest_departure - s.rtt).abs() < 1e-9);
            // Timings are monotone.
            let mut prev = w.earliest_departure;
            for t in &s.timings {
                prop_assert!(t.arrival + 1e-9 >= prev);
                prop_assert!(t.service_start + 1e-9 >= t.arrival);
                prop_assert!(t.departure + 1e-9 >= t.service_start);
                prev = t.departure;
            }
        }
    }

    /// evaluate() accepts a mandatory-only solution for any feasible-time
    /// worker set, and reports zero incentive for the TSP order.
    #[test]
    fn mandatory_only_solutions_validate(ws in prop::collection::vec(arb_worker(), 1..4)) {
        let inst = instance(ws);
        // Build each worker's route in TSP order so rtt == base_rtt.
        let mut routes = Vec::new();
        for w in &inst.workers {
            let stops: Vec<Point> = w.travel_tasks.iter().map(|t| t.loc).collect();
            let (order, _) = smore_model::tsp::solve_open_tsp(&w.origin, &w.destination, &stops);
            routes.push(Route::new(order.into_iter().map(Stop::Travel).collect()));
        }
        let sol = Solution { routes };
        let stats = evaluate(&inst, &sol).unwrap();
        prop_assert!(stats.total_incentive.abs() < 1e-6);
        prop_assert_eq!(stats.completed, 0);
    }

    /// A solution may not complete the same sensing task twice, in any route.
    #[test]
    fn duplicate_tasks_always_rejected(i in 0usize..64) {
        let w1 = Worker::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0), 0.0, 1e6, vec![]);
        let w2 = w1.clone();
        let mut inst = instance(vec![w1, w2]);
        inst.budget = f64::INFINITY;
        let id = SensingTaskId(i % inst.n_tasks());
        let sol = Solution {
            routes: vec![
                Route::new(vec![Stop::Sensing(id)]),
                Route::new(vec![Stop::Sensing(id)]),
            ],
        };
        prop_assert!(evaluate(&inst, &sol).is_err());
    }
}
