//! Multi-destination workers (Definition 2).

use crate::tasks::TravelTask;
use serde::{Deserialize, Serialize};
use smore_geo::Point;

/// Identifier of a worker within an [`crate::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

/// A multi-destination worker
/// `w = <l_s, l_e, t_s^min, t_e^max, D>` (Definition 2): a participant with an
/// origin, a final destination, a feasible departure/arrival time range, and a
/// set of mandatory travel tasks that must all be completed during the trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Trip origin `l_s`.
    pub origin: Point,
    /// Final destination `l_e`.
    pub destination: Point,
    /// Earliest feasible departure time `t_s^min`, in minutes.
    pub earliest_departure: f64,
    /// Latest feasible arrival time `t_e^max`, in minutes.
    pub latest_arrival: f64,
    /// Mandatory travel tasks `D` — every one must appear in any feasible
    /// working route for this worker.
    pub travel_tasks: Vec<TravelTask>,
}

impl Worker {
    /// Creates a worker.
    ///
    /// # Panics
    /// Panics if the time range is inverted.
    pub fn new(
        origin: Point,
        destination: Point,
        earliest_departure: f64,
        latest_arrival: f64,
        travel_tasks: Vec<TravelTask>,
    ) -> Self {
        assert!(
            earliest_departure <= latest_arrival,
            "worker time range inverted: [{earliest_departure}, {latest_arrival}]"
        );
        Self { origin, destination, earliest_departure, latest_arrival, travel_tasks }
    }

    /// The worker's total available time `t_e^max − t_s^min`.
    pub fn time_budget(&self) -> f64 {
        self.latest_arrival - self.earliest_departure
    }

    /// Total service time of the mandatory travel tasks.
    pub fn mandatory_service(&self) -> f64 {
        self.travel_tasks.iter().map(|t| t.service).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_budget_and_mandatory_service() {
        let w = Worker::new(
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            10.0,
            250.0,
            vec![
                TravelTask::new(Point::new(50.0, 0.0), 10.0),
                TravelTask::new(Point::new(60.0, 10.0), 10.0),
            ],
        );
        assert_eq!(w.time_budget(), 240.0);
        assert_eq!(w.mandatory_service(), 20.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_time_range_rejected() {
        Worker::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0), 100.0, 50.0, vec![]);
    }
}
