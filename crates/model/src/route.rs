//! Working routes and their schedules (Definition 5).
//!
//! A working route is the traveling sequence
//! `l_s → ta_1 → … → ta_k → l_e` where each intermediate stop is either one
//! of the worker's mandatory travel tasks or an assigned sensing task. The
//! *route travel time* `rtt` sums inter-stop travel times, waiting times
//! (only sensing tasks can induce waiting) and service times. A route is
//! feasible iff `t_s^min + rtt ≤ t_e^max` and every sensing task's service
//! period fits inside its availability window.

use crate::tasks::{SensingTask, SensingTaskId};
use crate::worker::Worker;
use serde::{Deserialize, Serialize};
use smore_geo::{Point, TravelTimeModel};

/// Numerical slack used in all time-feasibility comparisons.
pub const TIME_EPS: f64 = 1e-6;

/// One intermediate stop of a working route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stop {
    /// The `i`-th travel task of the route's worker (index into
    /// [`Worker::travel_tasks`]).
    Travel(usize),
    /// A sensing task of the instance.
    Sensing(SensingTaskId),
}

/// A working route: the ordered intermediate stops between the worker's
/// origin and final destination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Ordered intermediate stops (origin and destination are implicit).
    pub stops: Vec<Stop>,
}

impl Route {
    /// An empty route: origin straight to destination.
    pub fn empty() -> Self {
        Self { stops: Vec::new() }
    }

    /// Creates a route from stops.
    pub fn new(stops: Vec<Stop>) -> Self {
        Self { stops }
    }

    /// Iterator over the sensing tasks assigned in this route, in visit order.
    pub fn sensing_tasks(&self) -> impl Iterator<Item = SensingTaskId> + '_ {
        self.stops.iter().filter_map(|s| match s {
            Stop::Sensing(id) => Some(*id),
            Stop::Travel(_) => None,
        })
    }

    /// Number of sensing tasks in the route.
    pub fn sensing_count(&self) -> usize {
        self.sensing_tasks().count()
    }
}

/// Timing of one stop in a scheduled route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopTiming {
    /// The stop this timing refers to.
    pub stop: Stop,
    /// Absolute arrival time at the stop's location.
    pub arrival: f64,
    /// Waiting before service can start (only non-zero for sensing tasks
    /// whose window has not opened yet).
    pub waiting: f64,
    /// Absolute time service begins.
    pub service_start: f64,
    /// Absolute time service completes.
    pub departure: f64,
}

/// The evaluated schedule of a feasible route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Route travel time `rtt` (Equation 1): total elapsed time from leaving
    /// the origin to reaching the final destination.
    pub rtt: f64,
    /// Absolute arrival time at the final destination.
    pub final_arrival: f64,
    /// Per-stop timings, in route order.
    pub timings: Vec<StopTiming>,
}

/// Why a route failed to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Infeasibility {
    /// A sensing task's window closed before its service could complete.
    /// Contains the position of the offending stop in the route.
    WindowViolated(usize),
    /// The worker would reach the final destination after `t_e^max`.
    LateArrival {
        /// Computed arrival time at the destination.
        arrival: f64,
        /// The worker's latest feasible arrival `t_e^max`.
        latest: f64,
    },
    /// A `Stop::Travel(i)` index is out of bounds for the worker.
    BadTravelIndex(usize),
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::WindowViolated(pos) => {
                write!(f, "sensing window violated at stop {pos}")
            }
            Infeasibility::LateArrival { arrival, latest } => {
                write!(f, "arrival {arrival:.3} after latest feasible time {latest:.3}")
            }
            Infeasibility::BadTravelIndex(i) => write!(f, "travel-task index {i} out of bounds"),
        }
    }
}

impl std::error::Error for Infeasibility {}

/// Evaluates `route` for `worker`, assuming departure at `t_s^min`.
///
/// `sensing` resolves [`SensingTaskId`]s — typically
/// [`crate::Instance::sensing_task`], passed as a closure so the scheduler
/// works for hypothetical tasks too.
pub fn schedule_route(
    worker: &Worker,
    route: &Route,
    travel: &TravelTimeModel,
    sensing: &dyn Fn(SensingTaskId) -> SensingTask,
) -> Result<Schedule, Infeasibility> {
    let depart = worker.earliest_departure;
    let mut t = depart;
    let mut at: Point = worker.origin;
    let mut timings = Vec::with_capacity(route.stops.len());

    for (pos, &stop) in route.stops.iter().enumerate() {
        let (loc, service, window) = match stop {
            Stop::Travel(i) => {
                let task = worker.travel_tasks.get(i).ok_or(Infeasibility::BadTravelIndex(i))?;
                // Travel tasks have no window of their own; the worker's own
                // time range bounds them implicitly (Section III-C).
                (task.loc, task.service, None)
            }
            Stop::Sensing(id) => {
                let task = sensing(id);
                (task.loc, task.service, Some(task.window))
            }
        };
        let arrival = t + travel.travel_time(&at, &loc);
        let service_start = match window {
            Some(w) => {
                w.service_start(arrival, service).ok_or(Infeasibility::WindowViolated(pos))?
            }
            None => arrival,
        };
        let departure = service_start + service;
        timings.push(StopTiming {
            stop,
            arrival,
            waiting: service_start - arrival,
            service_start,
            departure,
        });
        t = departure;
        at = loc;
    }

    let final_arrival = t + travel.travel_time(&at, &worker.destination);
    if final_arrival > worker.latest_arrival + TIME_EPS {
        return Err(Infeasibility::LateArrival {
            arrival: final_arrival,
            latest: worker.latest_arrival,
        });
    }
    Ok(Schedule { rtt: final_arrival - depart, final_arrival, timings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TravelTask;
    use smore_geo::{StCell, TimeWindow};

    fn sensing_at(x: f64, y: f64, tw: (f64, f64), service: f64) -> SensingTask {
        SensingTask::new(
            Point::new(x, y),
            TimeWindow::new(tw.0, tw.1),
            service,
            StCell { row: 0, col: 0, slot: 0 },
        )
    }

    fn worker() -> Worker {
        Worker::new(
            Point::new(0.0, 0.0),
            Point::new(240.0, 0.0),
            0.0,
            240.0,
            vec![TravelTask::new(Point::new(60.0, 0.0), 10.0)],
        )
    }

    const TT: TravelTimeModel = TravelTimeModel::PAPER_DEFAULT;

    #[test]
    fn empty_route_is_direct_trip() {
        let w = worker();
        let s = schedule_route(&w, &Route::empty(), &TT, &|_| unreachable!()).unwrap();
        assert!((s.rtt - 4.0).abs() < 1e-9); // 240 m at 60 m/min
        assert!(s.timings.is_empty());
    }

    #[test]
    fn travel_task_adds_service_time() {
        let w = worker();
        let r = Route::new(vec![Stop::Travel(0)]);
        let s = schedule_route(&w, &r, &TT, &|_| unreachable!()).unwrap();
        // 1 min to task + 10 min service + 3 min to destination.
        assert!((s.rtt - 14.0).abs() < 1e-9);
        assert_eq!(s.timings[0].waiting, 0.0);
    }

    #[test]
    fn sensing_task_waits_for_window() {
        let w = worker();
        let task = sensing_at(120.0, 0.0, (30.0, 60.0), 5.0);
        let r = Route::new(vec![Stop::Travel(0), Stop::Sensing(SensingTaskId(0))]);
        let s = schedule_route(&w, &r, &TT, &|_| task).unwrap();
        // Arrive at sensing loc at 1+10+1 = 12, wait until 30, serve 5, then 2 min to dest.
        let timing = s.timings[1];
        assert!((timing.arrival - 12.0).abs() < 1e-9);
        assert!((timing.waiting - 18.0).abs() < 1e-9);
        assert!((s.rtt - 37.0).abs() < 1e-9);
    }

    #[test]
    fn closed_window_is_infeasible() {
        let w = worker();
        let task = sensing_at(120.0, 0.0, (0.0, 10.0), 5.0);
        let r = Route::new(vec![Stop::Travel(0), Stop::Sensing(SensingTaskId(0))]);
        // Arrives at t = 12 > 10 − 5.
        assert_eq!(
            schedule_route(&w, &r, &TT, &|_| task).unwrap_err(),
            Infeasibility::WindowViolated(1)
        );
    }

    #[test]
    fn late_arrival_is_infeasible() {
        let mut w = worker();
        w.latest_arrival = 10.0;
        let r = Route::new(vec![Stop::Travel(0)]);
        match schedule_route(&w, &r, &TT, &|_| unreachable!()).unwrap_err() {
            Infeasibility::LateArrival { arrival, latest } => {
                assert!((arrival - 14.0).abs() < 1e-9);
                assert_eq!(latest, 10.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_travel_index_reported() {
        let w = worker();
        let r = Route::new(vec![Stop::Travel(7)]);
        assert_eq!(
            schedule_route(&w, &r, &TT, &|_| unreachable!()).unwrap_err(),
            Infeasibility::BadTravelIndex(7)
        );
    }

    #[test]
    fn nonzero_departure_shifts_clock() {
        let mut w = worker();
        w.earliest_departure = 100.0;
        w.latest_arrival = 340.0;
        let task = sensing_at(120.0, 0.0, (30.0, 200.0), 5.0);
        let r = Route::new(vec![Stop::Sensing(SensingTaskId(0))]);
        let s = schedule_route(&w, &r, &TT, &|_| task).unwrap();
        // Departs at 100, arrives at 102 — no waiting since window already open.
        assert_eq!(s.timings[0].waiting, 0.0);
        assert!((s.rtt - 9.0).abs() < 1e-9);
    }
}
