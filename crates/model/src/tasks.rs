//! Travel tasks and sensing tasks (Definitions 1 & 3).

use serde::{Deserialize, Serialize};
use smore_geo::{GridSpec, Point, StCell, StResolution, TimeWindow};

/// A mandatory intermediate activity of a worker, e.g. delivering a parcel or
/// visiting a tourist attraction (Definition 1: `d = <l, τ>`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TravelTask {
    /// Geographical location of the task.
    pub loc: Point,
    /// Service duration in minutes (10 for deliveries, 20 for POIs in the paper).
    pub service: f64,
}

impl TravelTask {
    /// Creates a travel task.
    pub fn new(loc: Point, service: f64) -> Self {
        assert!(service >= 0.0, "service time must be non-negative");
        Self { loc, service }
    }
}

/// Identifier of a sensing task within an [`crate::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SensingTaskId(pub usize);

/// An urban sensing task (Definition 3: `s = <l, tw_s, tw_e, τ>`).
///
/// A sensing task can be completed by at most one worker, whose sensing
/// period must fall fully inside the availability window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingTask {
    /// Location where the measurement must be taken.
    pub loc: Point,
    /// Availability window `[tw_s, tw_e]`.
    pub window: TimeWindow,
    /// Sensing duration `τ` in minutes.
    pub service: f64,
    /// Identity of this task in the spatio-temporal lattice, used by the
    /// coverage metric (base-resolution cell).
    pub cell: StCell,
}

impl SensingTask {
    /// Creates a sensing task.
    pub fn new(loc: Point, window: TimeWindow, service: f64, cell: StCell) -> Self {
        assert!(service >= 0.0, "service time must be non-negative");
        assert!(
            window.length() + 1e-9 >= service,
            "sensing window shorter than the sensing duration"
        );
        Self { loc, window, service, cell }
    }
}

/// Parameters for the uniform creation of sensing tasks over the
/// spatio-temporal range (Section II-A: "S can be constructed by partitioning
/// the spatio-temporal range with pre-defined spatial and temporal
/// resolutions").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingLattice {
    /// Spatial partition of the region of interest.
    pub grid: GridSpec,
    /// Total sensing-project time span in minutes (4h delivery / 6h tourism).
    pub horizon: f64,
    /// Length of each sensing task's time window in minutes (30 by default;
    /// Table I sweeps {30, 60, 120}).
    pub window_len: f64,
    /// Sensing duration `τ` of every created task.
    pub service: f64,
}

impl SensingLattice {
    /// Number of temporal slots `horizon / window_len` (rounded down, ≥ 1).
    pub fn slots(&self) -> usize {
        ((self.horizon / self.window_len).floor() as usize).max(1)
    }

    /// The base spatio-temporal resolution induced by this lattice, which is
    /// also the finest level of the coverage pyramid.
    pub fn resolution(&self) -> StResolution {
        StResolution::new(self.grid.rows, self.grid.cols, self.slots())
    }

    /// Creates one sensing task per spatio-temporal cell, located at the
    /// cell's spatial center with the slot's interval as its window.
    pub fn create_tasks(&self) -> Vec<SensingTask> {
        let slots = self.slots();
        let mut tasks = Vec::with_capacity(self.grid.cell_count() * slots);
        for row in 0..self.grid.rows {
            for col in 0..self.grid.cols {
                let loc = self.grid.cell_center(smore_geo::Cell { row, col });
                for slot in 0..slots {
                    let start = slot as f64 * self.window_len;
                    tasks.push(SensingTask::new(
                        loc,
                        TimeWindow::new(start, start + self.window_len),
                        self.service,
                        StCell { row, col, slot },
                    ));
                }
            }
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice() -> SensingLattice {
        SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 2000.0, 2400.0, 12, 10),
            horizon: 240.0,
            window_len: 30.0,
            service: 5.0,
        }
    }

    #[test]
    fn paper_scale_task_count() {
        // Delivery: 10×12 grid, 4h span, 30-minute windows → 120 × 8 = 960.
        let l = lattice();
        assert_eq!(l.slots(), 8);
        assert_eq!(l.create_tasks().len(), 960);
    }

    #[test]
    fn windows_tile_the_horizon() {
        let l = lattice();
        let tasks = l.create_tasks();
        for t in &tasks {
            assert!(t.window.start >= 0.0 && t.window.end <= l.horizon + 1e-9);
            assert_eq!(t.window.length(), 30.0);
        }
    }

    #[test]
    fn cells_are_unique_and_match_locations() {
        let l = lattice();
        let tasks = l.create_tasks();
        let mut seen = std::collections::HashSet::new();
        for t in &tasks {
            assert!(seen.insert((t.cell.row, t.cell.col, t.cell.slot)), "duplicate cell");
            let spatial = l.grid.cell_of(&t.loc);
            assert_eq!((spatial.row, spatial.col), (t.cell.row, t.cell.col));
        }
    }

    #[test]
    fn wide_windows_reduce_slot_count() {
        let mut l = lattice();
        l.window_len = 120.0;
        assert_eq!(l.slots(), 2);
        assert_eq!(l.create_tasks().len(), 240);
    }

    #[test]
    #[should_panic(expected = "window shorter")]
    fn service_longer_than_window_rejected() {
        SensingTask::new(
            Point::new(0.0, 0.0),
            TimeWindow::new(0.0, 4.0),
            5.0,
            StCell { row: 0, col: 0, slot: 0 },
        );
    }
}
