//! Solutions, independent validation, and the solver interface.

use crate::deadline::Deadline;
use crate::instance::Instance;
use crate::route::{Infeasibility, Route, Stop, TIME_EPS};
use crate::tasks::SensingTaskId;
use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};

/// A candidate solution to a USMDW instance: one working route per worker
/// (possibly the empty route, meaning the worker is not recruited beyond
/// their mandatory trip).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// `routes[i]` is the working route of worker `i`.
    pub routes: Vec<Route>,
}

impl Solution {
    /// The all-empty solution (no sensing tasks assigned).
    pub fn empty(n_workers: usize) -> Self {
        Self { routes: vec![Route::empty(); n_workers] }
    }

    /// All sensing tasks completed across workers, in worker order.
    pub fn completed_tasks(&self) -> Vec<SensingTaskId> {
        self.routes.iter().flat_map(|r| r.sensing_tasks()).collect()
    }
}

/// Evaluated statistics of a validated solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionStats {
    /// Objective value `φ(S')`.
    pub objective: f64,
    /// Total incentive paid, `Σ_w in_w`.
    pub total_incentive: f64,
    /// Number of completed sensing tasks `|S'|`.
    pub completed: usize,
    /// Incentive paid to each worker.
    pub per_worker_incentive: Vec<f64>,
    /// Route travel time of each worker.
    pub per_worker_rtt: Vec<f64>,
}

/// Why a solution failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The solution does not provide exactly one route per worker.
    RouteCountMismatch {
        /// Routes provided.
        got: usize,
        /// Workers in the instance.
        expected: usize,
    },
    /// A worker's route omits one of their mandatory travel tasks.
    MissingTravelTask {
        /// The offending worker.
        worker: WorkerId,
        /// Index of the omitted travel task.
        index: usize,
    },
    /// A worker's route visits one of their travel tasks more than once.
    DuplicateTravelTask {
        /// The offending worker.
        worker: WorkerId,
        /// Index of the duplicated travel task.
        index: usize,
    },
    /// A sensing task appears in more than one route (or twice in one).
    DuplicateSensingTask(SensingTaskId),
    /// A route references a sensing task id outside the instance.
    UnknownSensingTask(SensingTaskId),
    /// A route cannot be scheduled feasibly.
    InfeasibleRoute {
        /// The offending worker.
        worker: WorkerId,
        /// The scheduling failure.
        cause: Infeasibility,
    },
    /// The total incentive exceeds the budget.
    BudgetExceeded {
        /// Incentives actually owed.
        spent: f64,
        /// The instance budget `B`.
        budget: f64,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::RouteCountMismatch { got, expected } => {
                write!(f, "solution has {got} routes for {expected} workers")
            }
            ValidationError::MissingTravelTask { worker, index } => {
                write!(f, "worker {} misses mandatory travel task {index}", worker.0)
            }
            ValidationError::DuplicateTravelTask { worker, index } => {
                write!(f, "worker {} visits travel task {index} twice", worker.0)
            }
            ValidationError::DuplicateSensingTask(id) => {
                write!(f, "sensing task {} completed more than once", id.0)
            }
            ValidationError::UnknownSensingTask(id) => {
                write!(f, "sensing task id {} out of bounds", id.0)
            }
            ValidationError::InfeasibleRoute { worker, cause } => {
                write!(f, "worker {} route infeasible: {cause}", worker.0)
            }
            ValidationError::BudgetExceeded { spent, budget } => {
                write!(f, "incentives {spent:.3} exceed budget {budget:.3}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Independently validates `solution` against `instance` and computes its
/// statistics. This is the referee used by every experiment: it re-schedules
/// every route from scratch and re-derives incentives and coverage, so a
/// solver cannot accidentally report an infeasible or over-budget solution.
pub fn evaluate(
    instance: &Instance,
    solution: &Solution,
) -> Result<SolutionStats, ValidationError> {
    if solution.routes.len() != instance.n_workers() {
        return Err(ValidationError::RouteCountMismatch {
            got: solution.routes.len(),
            expected: instance.n_workers(),
        });
    }

    let mut seen_sensing = vec![false; instance.n_tasks()];
    let mut per_worker_incentive = Vec::with_capacity(instance.n_workers());
    let mut per_worker_rtt = Vec::with_capacity(instance.n_workers());
    let mut coverage = instance.coverage_tracker();
    let mut completed = 0usize;

    for (w, route) in solution.routes.iter().enumerate() {
        let wid = WorkerId(w);
        let worker = instance.worker(wid);

        // Mandatory-visit accounting.
        let mut travel_seen = vec![0u32; worker.travel_tasks.len()];
        for stop in &route.stops {
            match stop {
                Stop::Travel(i) => {
                    if *i >= travel_seen.len() {
                        return Err(ValidationError::InfeasibleRoute {
                            worker: wid,
                            cause: Infeasibility::BadTravelIndex(*i),
                        });
                    }
                    travel_seen[*i] += 1;
                    if travel_seen[*i] > 1 {
                        return Err(ValidationError::DuplicateTravelTask {
                            worker: wid,
                            index: *i,
                        });
                    }
                }
                Stop::Sensing(id) => {
                    if id.0 >= instance.n_tasks() {
                        return Err(ValidationError::UnknownSensingTask(*id));
                    }
                    if seen_sensing[id.0] {
                        return Err(ValidationError::DuplicateSensingTask(*id));
                    }
                    seen_sensing[id.0] = true;
                }
            }
        }
        if let Some(index) = travel_seen.iter().position(|&c| c == 0) {
            return Err(ValidationError::MissingTravelTask { worker: wid, index });
        }

        let schedule = instance
            .schedule(wid, route)
            .map_err(|cause| ValidationError::InfeasibleRoute { worker: wid, cause })?;

        for id in route.sensing_tasks() {
            coverage.add(instance.sensing_task(id).cell);
            completed += 1;
        }
        per_worker_incentive.push(instance.incentive(wid, schedule.rtt));
        per_worker_rtt.push(schedule.rtt);
    }

    let total_incentive: f64 = per_worker_incentive.iter().sum();
    if total_incentive > instance.budget + TIME_EPS {
        return Err(ValidationError::BudgetExceeded {
            spent: total_incentive,
            budget: instance.budget,
        });
    }

    Ok(SolutionStats {
        objective: coverage.value(),
        total_incentive,
        completed,
        per_worker_incentive,
        per_worker_rtt,
    })
}

/// A USMDW solver: SMORE, each baseline, and each ablation implement this.
///
/// Solving takes `&mut self` because learned solvers carry RNG state and
/// search solvers carry scratch buffers.
pub trait UsmdwSolver {
    /// Short display name, e.g. `"SMORE"` or `"TVPG"`.
    fn name(&self) -> &str;

    /// Computes working routes for every worker of `instance`, treating
    /// `deadline` as an anytime budget: implementations check it between
    /// candidate evaluations and, once it expires, stop improving and return
    /// the best *valid* solution assembled so far (at worst
    /// [`Instance::reference_solution`], never a half-applied state).
    fn solve_within(&mut self, instance: &Instance, deadline: Deadline) -> Solution;

    /// Computes working routes with no time budget.
    fn solve(&mut self, instance: &Instance) -> Solution {
        self.solve_within(instance, Deadline::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{SensingLattice, TravelTask};
    use crate::worker::Worker;
    use smore_geo::{GridSpec, Point, TravelTimeModel};

    fn instance() -> Instance {
        let lattice = SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
            horizon: 120.0,
            window_len: 30.0,
            service: 5.0,
        };
        let w = Worker::new(
            Point::new(0.0, 0.0),
            Point::new(1200.0, 0.0),
            0.0,
            120.0,
            vec![TravelTask::new(Point::new(600.0, 0.0), 10.0)],
        );
        Instance::from_lattice(vec![w], lattice, 300.0, 1.0, TravelTimeModel::PAPER_DEFAULT, 0.5)
    }

    #[test]
    fn empty_solution_validates_when_mandatory_trip_is_included() {
        let inst = instance();
        // Route must still visit the mandatory travel task.
        let sol = Solution { routes: vec![Route::new(vec![Stop::Travel(0)])] };
        let stats = evaluate(&inst, &sol).unwrap();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.objective, 0.0);
        assert!((stats.total_incentive - 0.0).abs() < 1e-9);
    }

    #[test]
    fn missing_mandatory_task_rejected() {
        let inst = instance();
        let sol = Solution::empty(1);
        assert_eq!(
            evaluate(&inst, &sol).unwrap_err(),
            ValidationError::MissingTravelTask { worker: WorkerId(0), index: 0 }
        );
    }

    #[test]
    fn duplicate_sensing_task_rejected() {
        let inst = instance();
        let id = SensingTaskId(0);
        let sol = Solution {
            routes: vec![Route::new(vec![Stop::Sensing(id), Stop::Travel(0), Stop::Sensing(id)])],
        };
        assert_eq!(evaluate(&inst, &sol).unwrap_err(), ValidationError::DuplicateSensingTask(id));
    }

    #[test]
    fn unknown_sensing_task_rejected() {
        let inst = instance();
        let id = SensingTaskId(9999);
        let sol = Solution { routes: vec![Route::new(vec![Stop::Travel(0), Stop::Sensing(id)])] };
        assert_eq!(evaluate(&inst, &sol).unwrap_err(), ValidationError::UnknownSensingTask(id));
    }

    #[test]
    fn route_count_mismatch_rejected() {
        let inst = instance();
        let sol = Solution::empty(3);
        assert!(matches!(
            evaluate(&inst, &sol).unwrap_err(),
            ValidationError::RouteCountMismatch { got: 3, expected: 1 }
        ));
    }

    #[test]
    fn budget_enforced() {
        let mut inst = instance();
        inst.budget = 0.5;
        // Visit a sensing task far off the direct path: costs noticeable incentive.
        let far = inst
            .sensing_tasks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.loc.y.total_cmp(&b.1.loc.y))
            .map(|(i, _)| SensingTaskId(i))
            .unwrap();
        let sol = Solution { routes: vec![Route::new(vec![Stop::Travel(0), Stop::Sensing(far)])] };
        match evaluate(&inst, &sol) {
            Err(ValidationError::BudgetExceeded { spent, budget }) => {
                assert!(spent > budget);
            }
            other => panic!("expected budget violation, got {other:?}"),
        }
    }

    #[test]
    fn valid_sensing_assignment_counts_coverage() {
        let inst = instance();
        // A sensing task on the straight path in the first slot.
        let (idx, _) = inst
            .sensing_tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.cell.slot == 0 && t.cell.row == 0)
            .min_by(|a, b| {
                a.1.loc
                    .distance(&Point::new(300.0, 150.0))
                    .total_cmp(&b.1.loc.distance(&Point::new(300.0, 150.0)))
            })
            .unwrap();
        let sol = Solution {
            routes: vec![Route::new(vec![Stop::Sensing(SensingTaskId(idx)), Stop::Travel(0)])],
        };
        let stats = evaluate(&inst, &sol).unwrap();
        assert_eq!(stats.completed, 1);
        assert!(stats.total_incentive > 0.0);
        // φ({s}) = 0 but the task must still be counted.
        assert_eq!(stats.objective, 0.0);
    }
}
