//! The USMDW problem model (Section II of the SMORE paper).
//!
//! This crate defines the data model shared by every solver in the
//! workspace:
//!
//! * [`TravelTask`], [`SensingTask`], [`Worker`] — Definitions 1–3.
//! * [`SensingLattice`] — uniform creation of sensing tasks over the
//!   spatio-temporal range.
//! * [`Route`] / [`schedule_route`] — working routes, route travel time with
//!   waiting semantics, and feasibility (Definition 5).
//! * [`Instance`] — a full problem instance, including the incentive model
//!   (Definition 6) with per-worker TSP reference routes.
//! * [`Solution`] / [`evaluate`] — independent validation and scoring.
//! * [`AssignmentState`] — the shared bookkeeping (`M`, `B_rest`) of
//!   Algorithm 1, reused by SMORE, the baselines and the ablations.
//! * [`UsmdwSolver`] — the trait all solvers implement.
//! * [`reduction`] — the executable OP → USMDW NP-hardness reduction.
//! * [`dto`] — wire-format request/response DTOs for the `smore-serve`
//!   JSON API (solve/feasible bodies, model checkpoints).
//! * [`checkpoint`] — crash-safe checkpoint persistence: sealed content
//!   checksums, atomic temp-file + fsync + rename writes, verifying loads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod checkpoint;
mod deadline;
pub mod dto;
mod instance;
pub mod reduction;
mod route;
mod solution;
mod tasks;
pub mod tsp;
mod worker;

pub use assignment::AssignmentState;
pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointError};
pub use deadline::{Deadline, DeadlineSpec};
pub use dto::{
    ErrorBody, EventsAccounting, EventsPair, EventsResponse, EventsWorker, FeasibleRequest,
    FeasibleResponse, GenerateSpec, ModelCheckpoint, SolveRequest, SolveResponse, TrainProgress,
};
pub use instance::{Instance, InstanceError};
pub use route::{schedule_route, Infeasibility, Route, Schedule, Stop, StopTiming, TIME_EPS};
pub use solution::{evaluate, Solution, SolutionStats, UsmdwSolver, ValidationError};
pub use tasks::{SensingLattice, SensingTask, SensingTaskId, TravelTask};
pub use worker::{Worker, WorkerId};
