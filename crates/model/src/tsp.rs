//! Open-path TSP used for the incentive reference route (Definition 6).
//!
//! The incentive of a worker is `μ × (rtt_actual − rtt_TSP(l_s, l_e, D))`,
//! where the reference is the minimum-time route from the origin to the
//! destination visiting all mandatory travel tasks. Because travel tasks
//! carry no time windows, the reference is a plain open-path TSP; service
//! and waiting times are order-independent constants.
//!
//! Instances are small (couriers carry a handful to a few dozen parcels), so
//! we solve exactly with Held–Karp bitmask DP up to [`EXACT_LIMIT`] stops and
//! fall back to nearest-neighbour construction plus 2-opt improvement above.

use smore_geo::Point;

/// Maximum number of intermediate stops solved exactly (DP is `O(n²·2ⁿ)`).
pub const EXACT_LIMIT: usize = 14;

/// Minimum-distance visiting order of `stops` on a path from `start` to
/// `end`, together with the total travelled distance (excluding service).
///
/// Returns an empty order and the direct distance when `stops` is empty.
pub fn solve_open_tsp(start: &Point, end: &Point, stops: &[Point]) -> (Vec<usize>, f64) {
    match stops.len() {
        0 => (Vec::new(), start.distance(end)),
        1 => (vec![0], start.distance(&stops[0]) + stops[0].distance(end)),
        n if n <= EXACT_LIMIT => exact_dp(start, end, stops),
        _ => heuristic(start, end, stops),
    }
}

/// Total length of the path `start → stops[order[0]] → … → end`.
pub fn path_length(start: &Point, end: &Point, stops: &[Point], order: &[usize]) -> f64 {
    let mut at = *start;
    let mut len = 0.0;
    for &i in order {
        len += at.distance(&stops[i]);
        at = stops[i];
    }
    len + at.distance(end)
}

fn exact_dp(start: &Point, end: &Point, stops: &[Point]) -> (Vec<usize>, f64) {
    let n = stops.len();
    let full = 1usize << n;
    // dist[i][j]: between stops; sd[i]: start→i; ed[i]: i→end.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            dist[i * n + j] = stops[i].distance(&stops[j]);
        }
    }
    let sd: Vec<f64> = stops.iter().map(|p| start.distance(p)).collect();
    let ed: Vec<f64> = stops.iter().map(|p| p.distance(end)).collect();

    // dp[mask * n + last] = shortest path covering `mask`, ending at `last`.
    let mut dp = vec![f64::INFINITY; full * n];
    let mut parent = vec![usize::MAX; full * n];
    for i in 0..n {
        dp[(1 << i) * n + i] = sd[i];
    }
    for mask in 1..full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nm = mask | (1 << next);
                let cand = cur + dist[last * n + next];
                if cand < dp[nm * n + next] {
                    dp[nm * n + next] = cand;
                    parent[nm * n + next] = last;
                }
            }
        }
    }
    let mut best = f64::INFINITY;
    let mut best_last = 0;
    for last in 0..n {
        let total = dp[(full - 1) * n + last] + ed[last];
        if total < best {
            best = total;
            best_last = last;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full - 1;
    let mut last = best_last;
    while last != usize::MAX {
        order.push(last);
        let p = parent[mask * n + last];
        mask &= !(1 << last);
        last = p;
    }
    order.reverse();
    (order, best)
}

fn heuristic(start: &Point, end: &Point, stops: &[Point]) -> (Vec<usize>, f64) {
    let n = stops.len();
    // Nearest-neighbour construction from the origin.
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut at = *start;
    for _ in 0..n {
        let (next, _) = stops
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, p)| (i, at.distance_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // smore-lint: allow(E1): the loop runs exactly `n` times over
            // `n` stops, so an unused one always exists.
            .expect("unused stop must exist");
        used[next] = true;
        at = stops[next];
        order.push(next);
    }
    // 2-opt improvement (segment reversal) until no improving move remains.
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n.saturating_sub(1) {
            for j in i + 1..n {
                let before = if i == 0 { *start } else { stops[order[i - 1]] };
                let after = if j == n - 1 { *end } else { stops[order[j + 1]] };
                let old = before.distance(&stops[order[i]]) + stops[order[j]].distance(&after);
                let new = before.distance(&stops[order[j]]) + stops[order[i]].distance(&after);
                if new + 1e-9 < old {
                    order[i..=j].reverse();
                    improved = true;
                }
            }
        }
    }
    let len = path_length(start, end, stops, &order);
    (order, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_stop() {
        let s = Point::new(0.0, 0.0);
        let e = Point::new(10.0, 0.0);
        assert_eq!(solve_open_tsp(&s, &e, &[]), (vec![], 10.0));
        let (order, len) = solve_open_tsp(&s, &e, &[Point::new(5.0, 0.0)]);
        assert_eq!(order, vec![0]);
        assert!((len - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exact_finds_collinear_order() {
        let s = Point::new(0.0, 0.0);
        let e = Point::new(100.0, 0.0);
        let stops = [Point::new(75.0, 0.0), Point::new(25.0, 0.0), Point::new(50.0, 0.0)];
        let (order, len) = solve_open_tsp(&s, &e, &stops);
        assert_eq!(order, vec![1, 2, 0]);
        assert!((len - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_brute_force_on_random_points() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let s = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let e = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let stops: Vec<Point> = (0..6)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let (_, dp_len) = solve_open_tsp(&s, &e, &stops);
            let best = permutations_min(&s, &e, &stops);
            assert!((dp_len - best).abs() < 1e-9, "dp {dp_len} vs brute {best}");
        }
    }

    fn permutations_min(s: &Point, e: &Point, stops: &[Point]) -> f64 {
        let mut idx: Vec<usize> = (0..stops.len()).collect();
        let mut best = f64::INFINITY;
        permute(&mut idx, 0, &mut |order| {
            best = best.min(path_length(s, e, stops, order));
        });
        best
    }

    fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, f);
            idx.swap(k, i);
        }
    }

    #[test]
    fn heuristic_visits_everything_once() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let s = Point::new(0.0, 0.0);
        let e = Point::new(100.0, 100.0);
        let stops: Vec<Point> = (0..25)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let (order, len) = solve_open_tsp(&s, &e, &stops);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..25).collect::<Vec<_>>());
        assert!((len - path_length(&s, &e, &stops, &order)).abs() < 1e-9);
    }

    #[test]
    fn heuristic_not_much_worse_than_exact_on_small() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(13);
        let s = Point::new(0.0, 0.0);
        let e = Point::new(100.0, 0.0);
        let stops: Vec<Point> = (0..10)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let (_, exact_len) = exact_dp(&s, &e, &stops);
        let (_, heur_len) = heuristic(&s, &e, &stops);
        assert!(heur_len <= exact_len * 1.15, "2-opt {heur_len} vs exact {exact_len}");
    }
}
