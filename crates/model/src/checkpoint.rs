//! Crash-safe checkpoint persistence.
//!
//! Three commitments, together the checkpoint atomicity contract
//! (DESIGN.md §12):
//!
//! 1. **Atomic visibility** — [`save_checkpoint`] serializes to a
//!    temporary file in the destination directory, fsyncs it, and renames
//!    it over the target. A reader (or a `--resume` after `kill -9`) sees
//!    either the complete previous checkpoint or the complete new one,
//!    never a torn mixture.
//! 2. **Self-describing integrity** — every checkpoint written here is
//!    *sealed*: [`ModelCheckpoint::checksum`] carries an FNV-1a digest of
//!    all other fields. [`load_checkpoint`] recomputes it and rejects
//!    mismatches as [`CheckpointError::ChecksumMismatch`], so corruption
//!    that survives JSON parsing (truncated string fields spliced by a
//!    partial write, bit flips in parameter text) is still caught.
//! 3. **Legacy tolerance** — checkpoints without a checksum (written
//!    before sealing existed, or hand-built fixtures) load verbatim; only
//!    a *present but wrong* digest is an error.

use crate::dto::{ModelCheckpoint, TrainProgress};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (open, write, fsync, rename).
    Io(String),
    /// The file's JSON failed to parse (classic truncation symptom).
    Parse(String),
    /// The file parsed but its content digest disagrees with the sealed
    /// checksum: the bytes were altered after sealing.
    ChecksumMismatch {
        /// The checksum stored in the file.
        expected: u64,
        /// The digest recomputed from the file's content.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint corrupt: sealed checksum {expected:#018x} but content hashes to {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a accumulator with length-prefixed domain separation, so
/// `("ab", "c")` and `("a", "bc")` hash differently.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

impl ModelCheckpoint {
    /// FNV-1a digest over every field except `checksum` itself.
    pub fn content_checksum(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.grid_rows as u64);
        h.u64(self.grid_cols as u64);
        h.u64(self.d_model as u64);
        h.u64(self.heads as u64);
        h.u64(self.enc_layers as u64);
        h.str(&self.policy);
        h.str(&self.critic);
        match self.progress {
            None => h.u64(0),
            Some(TrainProgress { warmup_done, epochs_done }) => {
                h.u64(1);
                h.u64(warmup_done as u64);
                h.u64(epochs_done as u64);
            }
        }
        h.0
    }

    /// Returns this checkpoint with its checksum field set to the content
    /// digest. Writers seal before serializing.
    pub fn sealed(mut self) -> Self {
        self.checksum = Some(self.content_checksum());
        self
    }

    /// Verifies the sealed checksum, if present. Unsealed (legacy)
    /// checkpoints verify trivially.
    pub fn verify(&self) -> Result<(), CheckpointError> {
        match self.checksum {
            None => Ok(()),
            Some(expected) => {
                let actual = self.content_checksum();
                if expected == actual {
                    Ok(())
                } else {
                    Err(CheckpointError::ChecksumMismatch { expected, actual })
                }
            }
        }
    }
}

/// Atomically writes a sealed copy of `ckpt` to `path`: serialize → temp
/// file in the same directory → fsync → rename → fsync the directory (best
/// effort). A crash at any point leaves `path` either absent, the previous
/// version, or the complete new version.
pub fn save_checkpoint(path: &Path, ckpt: &ModelCheckpoint) -> Result<(), CheckpointError> {
    let sealed = ckpt.clone().sealed();
    let json = serde_json::to_string(&sealed).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| CheckpointError::Io(format!("invalid checkpoint path {path:?}")))?;
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp.{}", std::process::id())),
        None => std::path::PathBuf::from(format!(".{file_name}.tmp.{}", std::process::id())),
    };
    let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", tmp.display()));
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(json.as_bytes()).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path)
        .map_err(|e| CheckpointError::Io(format!("rename to {}: {e}", path.display())))?;
    // Durability of the rename itself needs a directory fsync on unix;
    // best-effort because not every filesystem permits opening a directory.
    if let Some(d) = dir {
        if let Ok(dirf) = fs::File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// Reads and verifies a checkpoint. Parse failures and checksum mismatches
/// are distinct errors so callers can report "torn write" versus
/// "silent corruption" precisely; both mean "do not trust this file".
pub fn load_checkpoint(path: &Path) -> Result<ModelCheckpoint, CheckpointError> {
    let raw = fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
    let ckpt: ModelCheckpoint =
        serde_json::from_str(&raw).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    ckpt.verify()?;
    Ok(ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The offline shadow build stubs serde_json's parser out; round-trip
    /// assertions self-skip there.
    fn serde_is_functional() -> bool {
        serde_json::from_str::<u64>("1").is_ok()
    }

    fn sample() -> ModelCheckpoint {
        ModelCheckpoint {
            grid_rows: 3,
            grid_cols: 4,
            d_model: 16,
            heads: 2,
            enc_layers: 1,
            policy: "{\"p\":[1.0]}".into(),
            critic: "{\"c\":[2.0]}".into(),
            checksum: None,
            progress: None,
        }
    }

    #[test]
    fn checksum_changes_with_any_field() {
        let base = sample().content_checksum();
        let mut a = sample();
        a.grid_rows = 5;
        let mut b = sample();
        b.policy.push('x');
        let mut c = sample();
        c.progress = Some(TrainProgress { warmup_done: 1, epochs_done: 0 });
        assert_ne!(base, a.content_checksum());
        assert_ne!(base, b.content_checksum());
        assert_ne!(base, c.content_checksum());
    }

    #[test]
    fn checksum_is_not_fooled_by_field_boundary_shifts() {
        let mut a = sample();
        a.policy = "ab".into();
        a.critic = "c".into();
        let mut b = sample();
        b.policy = "a".into();
        b.critic = "bc".into();
        assert_ne!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn sealed_checkpoints_verify_and_tampered_ones_do_not() {
        let sealed = sample().sealed();
        assert!(sealed.verify().is_ok());
        let mut tampered = sealed.clone();
        tampered.policy.push('!');
        assert!(matches!(tampered.verify(), Err(CheckpointError::ChecksumMismatch { .. })));
        // Legacy: no checksum, always verifies.
        assert!(sample().verify().is_ok());
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("smore-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_checkpoint(&path, &sample()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");
        if serde_is_functional() {
            let back = load_checkpoint(&path).unwrap();
            assert_eq!(back.checksum, Some(back.content_checksum()));
            assert_eq!(back.grid_rows, 3);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_detected() {
        if !serde_is_functional() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("smore-ckpt-trunc-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_checkpoint(&path, &sample()).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        // A torn write that cuts the file mid-token fails to parse.
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(CheckpointError::Parse(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_that_still_parses_is_detected_by_checksum() {
        if !serde_is_functional() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("smore-ckpt-flip-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_checkpoint(&path, &sample()).unwrap();
        // Corrupt inside a string field: the JSON stays parseable but the
        // content no longer matches the sealed digest.
        let corrupted = fs::read_to_string(&path).unwrap().replace("\\\"p\\\"", "\\\"q\\\"");
        fs::write(&path, corrupted).unwrap();
        assert!(matches!(load_checkpoint(&path), Err(CheckpointError::ChecksumMismatch { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
