//! USMDW problem instances.

use crate::route::{schedule_route, Infeasibility, Route, Schedule};
use crate::tasks::{SensingLattice, SensingTask, SensingTaskId};
use crate::tsp::solve_open_tsp;
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};
use smore_geo::{CoverageConfig, CoverageTracker, TravelTimeModel};

/// A complete USMDW problem instance (Section II-B): workers, sensing tasks,
/// a budget `B`, the incentive rate `μ`, the travel-time model, and the
/// coverage objective configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// The multi-destination workers `W`.
    pub workers: Vec<Worker>,
    /// The sensing tasks `S`.
    pub sensing_tasks: Vec<SensingTask>,
    /// Total incentive budget `B` (default 300 in the paper).
    pub budget: f64,
    /// Incentive per minute of extra route time `μ` (default 1).
    pub mu: f64,
    /// Travel-time model shared by all workers.
    pub travel: TravelTimeModel,
    /// The spatio-temporal lattice the tasks were created from (also defines
    /// the worker-encoding grid for TASNet).
    pub lattice: SensingLattice,
    /// Configuration of the hierarchical entropy-based coverage objective.
    pub coverage: CoverageConfig,
    /// Per-worker reference route time `rtt_TSP(l_s, l_e, D)` used by the
    /// incentive (Definition 6); computed once at construction.
    pub base_rtt: Vec<f64>,
}

impl Instance {
    /// Builds an instance whose sensing tasks are created uniformly from
    /// `lattice` (the paper's default construction).
    pub fn from_lattice(
        workers: Vec<Worker>,
        lattice: SensingLattice,
        budget: f64,
        mu: f64,
        travel: TravelTimeModel,
        alpha: f64,
    ) -> Self {
        let sensing_tasks = lattice.create_tasks();
        let coverage = CoverageConfig::new(alpha, lattice.resolution());
        Self::from_parts(workers, sensing_tasks, lattice, coverage, budget, mu, travel)
    }

    /// Builds an instance from explicit parts (used by the OP reduction and
    /// by tests that need hand-crafted task sets).
    pub fn from_parts(
        workers: Vec<Worker>,
        sensing_tasks: Vec<SensingTask>,
        lattice: SensingLattice,
        coverage: CoverageConfig,
        budget: f64,
        mu: f64,
        travel: TravelTimeModel,
    ) -> Self {
        assert!(budget >= 0.0 && mu >= 0.0, "budget and incentive rate must be non-negative");
        let base_rtt = workers
            .iter()
            .map(|w| {
                let stops: Vec<_> = w.travel_tasks.iter().map(|t| t.loc).collect();
                let (_, dist) = solve_open_tsp(&w.origin, &w.destination, &stops);
                dist / travel.speed + w.mandatory_service()
            })
            .collect();
        Self { workers, sensing_tasks, budget, mu, travel, lattice, coverage, base_rtt }
    }

    /// Number of workers `|W|`.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of sensing tasks `|S|`.
    pub fn n_tasks(&self) -> usize {
        self.sensing_tasks.len()
    }

    /// The sensing task with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    pub fn sensing_task(&self, id: SensingTaskId) -> &SensingTask {
        &self.sensing_tasks[id.0]
    }

    /// The worker with the given id.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0]
    }

    /// Incentive owed to `worker` for a route with travel time `rtt`
    /// (Definition 6): `μ × (rtt − rtt_TSP)`, floored at zero (a route never
    /// pays a negative incentive; the reference is already minimal, so the
    /// floor only absorbs numerical noise from heuristic reference routes).
    pub fn incentive(&self, worker: WorkerId, rtt: f64) -> f64 {
        self.mu * (rtt - self.base_rtt[worker.0]).max(0.0)
    }

    /// A fresh, empty coverage tracker for this instance's objective.
    pub fn coverage_tracker(&self) -> CoverageTracker {
        CoverageTracker::new(self.coverage.clone())
    }

    /// Schedules `route` for `worker` against this instance's tasks.
    pub fn schedule(&self, worker: WorkerId, route: &Route) -> Result<Schedule, Infeasibility> {
        schedule_route(&self.workers[worker.0], route, &self.travel, &|id| {
            *self.sensing_task(id)
        })
    }

    /// Objective value `φ` of completing exactly `tasks`.
    pub fn coverage_of(&self, tasks: &[SensingTaskId]) -> f64 {
        let mut tracker = self.coverage_tracker();
        for &id in tasks {
            tracker.add(self.sensing_task(id).cell);
        }
        tracker.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TravelTask;
    use smore_geo::{GridSpec, Point};

    fn small_lattice() -> SensingLattice {
        SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
            horizon: 120.0,
            window_len: 30.0,
            service: 5.0,
        }
    }

    fn worker(extra: Vec<TravelTask>) -> Worker {
        Worker::new(Point::new(0.0, 0.0), Point::new(1200.0, 0.0), 0.0, 120.0, extra)
    }

    #[test]
    fn from_lattice_creates_all_tasks() {
        let inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        assert_eq!(inst.n_tasks(), 4 * 4 * 4);
        assert_eq!(inst.coverage.base.rows, 4);
    }

    #[test]
    fn base_rtt_is_minimal_route() {
        let w = worker(vec![
            TravelTask::new(Point::new(600.0, 0.0), 10.0),
            TravelTask::new(Point::new(300.0, 0.0), 10.0),
        ]);
        let inst = Instance::from_lattice(
            vec![w],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        // Straight line 1200 m = 20 min + 20 min service.
        assert!((inst.base_rtt[0] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn incentive_is_extra_time_times_mu() {
        let inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            2.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        let wid = WorkerId(0);
        assert!((inst.incentive(wid, inst.base_rtt[0] + 7.5) - 15.0).abs() < 1e-9);
        // Never negative.
        assert_eq!(inst.incentive(wid, 0.0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let inst = Instance::from_lattice(
            vec![worker(vec![TravelTask::new(Point::new(100.0, 100.0), 10.0)])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_tasks(), inst.n_tasks());
        assert_eq!(back.base_rtt, inst.base_rtt);
    }
}
