//! USMDW problem instances.

use crate::route::{schedule_route, Infeasibility, Route, Schedule, Stop};
use crate::solution::Solution;
use crate::tasks::{SensingLattice, SensingTask, SensingTaskId};
use crate::tsp::solve_open_tsp;
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};
use smore_geo::{CoverageConfig, CoverageTracker, Point, TravelTimeModel};

/// Why an [`Instance`] is structurally invalid.
///
/// Constructors ([`Instance::from_parts`]) assert these invariants, but data
/// arriving from outside the process — JSON files, network payloads — can
/// violate them, so every deserialization runs [`Instance::validate`] and
/// surfaces the first violation as a typed error instead of letting NaNs or
/// inverted windows propagate into solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A coordinate or scalar field is NaN or infinite.
    NonFinite {
        /// Which field, e.g. `"worker 3 origin"`.
        what: String,
    },
    /// A worker's departure/arrival range is inverted.
    InvertedTimeRange {
        /// The offending worker.
        worker: WorkerId,
        /// Earliest departure `t_s^min`.
        earliest: f64,
        /// Latest arrival `t_e^max`.
        latest: f64,
    },
    /// A sensing task's availability window is inverted.
    InvertedWindow {
        /// The offending task.
        task: SensingTaskId,
        /// Window start.
        start: f64,
        /// Window end.
        end: f64,
    },
    /// The budget `B` is NaN or negative.
    InvalidBudget(f64),
    /// The incentive rate `μ` is NaN or negative.
    InvalidIncentiveRate(f64),
    /// The travel speed is not finite and positive.
    InvalidSpeed(f64),
    /// A service duration is NaN, negative, or longer than its time window.
    InvalidService {
        /// Which task, e.g. `"sensing task 12"`.
        what: String,
        /// The offending duration.
        value: f64,
    },
    /// A sensing task lies spatially outside the instance's lattice, or its
    /// lattice cell is outside the base resolution.
    TaskOutsideLattice {
        /// The offending task.
        task: SensingTaskId,
    },
    /// `base_rtt` does not hold one reference time per worker.
    BaseRttMismatch {
        /// Entries present.
        got: usize,
        /// Workers in the instance.
        expected: usize,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::NonFinite { what } => write!(f, "{what} is NaN or infinite"),
            InstanceError::InvertedTimeRange { worker, earliest, latest } => {
                write!(f, "worker {} time range inverted: [{earliest}, {latest}]", worker.0)
            }
            InstanceError::InvertedWindow { task, start, end } => {
                write!(f, "sensing task {} window inverted: [{start}, {end}]", task.0)
            }
            InstanceError::InvalidBudget(b) => write!(f, "budget {b} is not a non-negative number"),
            InstanceError::InvalidIncentiveRate(mu) => {
                write!(f, "incentive rate {mu} is not a non-negative number")
            }
            InstanceError::InvalidSpeed(s) => write!(f, "travel speed {s} is not finite positive"),
            InstanceError::InvalidService { what, value } => {
                write!(f, "{what} has invalid service duration {value}")
            }
            InstanceError::TaskOutsideLattice { task } => {
                write!(f, "sensing task {} lies outside the instance lattice", task.0)
            }
            InstanceError::BaseRttMismatch { got, expected } => {
                write!(f, "base_rtt has {got} entries for {expected} workers")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

fn finite_point(p: &Point, what: impl Fn() -> String) -> Result<(), InstanceError> {
    if p.x.is_finite() && p.y.is_finite() {
        Ok(())
    } else {
        Err(InstanceError::NonFinite { what: what() })
    }
}

/// A complete USMDW problem instance (Section II-B): workers, sensing tasks,
/// a budget `B`, the incentive rate `μ`, the travel-time model, and the
/// coverage objective configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "RawInstance")]
pub struct Instance {
    /// The multi-destination workers `W`.
    pub workers: Vec<Worker>,
    /// The sensing tasks `S`.
    pub sensing_tasks: Vec<SensingTask>,
    /// Total incentive budget `B` (default 300 in the paper).
    pub budget: f64,
    /// Incentive per minute of extra route time `μ` (default 1).
    pub mu: f64,
    /// Travel-time model shared by all workers.
    pub travel: TravelTimeModel,
    /// The spatio-temporal lattice the tasks were created from (also defines
    /// the worker-encoding grid for TASNet).
    pub lattice: SensingLattice,
    /// Configuration of the hierarchical entropy-based coverage objective.
    pub coverage: CoverageConfig,
    /// Per-worker reference route time `rtt_TSP(l_s, l_e, D)` used by the
    /// incentive (Definition 6); computed once at construction.
    pub base_rtt: Vec<f64>,
}

/// Wire-format mirror of [`Instance`]. Deserialization lands here first and
/// is promoted through `TryFrom`, which runs [`Instance::validate`] — so an
/// `Instance` that came from untrusted bytes is structurally sound by
/// construction.
#[derive(Deserialize)]
struct RawInstance {
    workers: Vec<Worker>,
    sensing_tasks: Vec<SensingTask>,
    budget: f64,
    mu: f64,
    travel: TravelTimeModel,
    lattice: SensingLattice,
    coverage: CoverageConfig,
    base_rtt: Vec<f64>,
}

impl TryFrom<RawInstance> for Instance {
    type Error = InstanceError;

    fn try_from(raw: RawInstance) -> Result<Self, InstanceError> {
        let inst = Instance {
            workers: raw.workers,
            sensing_tasks: raw.sensing_tasks,
            budget: raw.budget,
            mu: raw.mu,
            travel: raw.travel,
            lattice: raw.lattice,
            coverage: raw.coverage,
            base_rtt: raw.base_rtt,
        };
        inst.validate()?;
        Ok(inst)
    }
}

impl Instance {
    /// Builds an instance whose sensing tasks are created uniformly from
    /// `lattice` (the paper's default construction).
    pub fn from_lattice(
        workers: Vec<Worker>,
        lattice: SensingLattice,
        budget: f64,
        mu: f64,
        travel: TravelTimeModel,
        alpha: f64,
    ) -> Self {
        let sensing_tasks = lattice.create_tasks();
        let coverage = CoverageConfig::new(alpha, lattice.resolution());
        Self::from_parts(workers, sensing_tasks, lattice, coverage, budget, mu, travel)
    }

    /// Builds an instance from explicit parts (used by the OP reduction and
    /// by tests that need hand-crafted task sets).
    pub fn from_parts(
        workers: Vec<Worker>,
        sensing_tasks: Vec<SensingTask>,
        lattice: SensingLattice,
        coverage: CoverageConfig,
        budget: f64,
        mu: f64,
        travel: TravelTimeModel,
    ) -> Self {
        assert!(budget >= 0.0 && mu >= 0.0, "budget and incentive rate must be non-negative");
        let base_rtt = workers
            .iter()
            .map(|w| {
                let stops: Vec<_> = w.travel_tasks.iter().map(|t| t.loc).collect();
                let (_, dist) = solve_open_tsp(&w.origin, &w.destination, &stops);
                dist / travel.speed + w.mandatory_service()
            })
            .collect();
        Self { workers, sensing_tasks, budget, mu, travel, lattice, coverage, base_rtt }
    }

    /// Number of workers `|W|`.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of sensing tasks `|S|`.
    pub fn n_tasks(&self) -> usize {
        self.sensing_tasks.len()
    }

    /// The sensing task with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of bounds.
    pub fn sensing_task(&self, id: SensingTaskId) -> &SensingTask {
        &self.sensing_tasks[id.0]
    }

    /// The worker with the given id.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0]
    }

    /// Incentive owed to `worker` for a route with travel time `rtt`
    /// (Definition 6): `μ × (rtt − rtt_TSP)`, floored at zero (a route never
    /// pays a negative incentive; the reference is already minimal, so the
    /// floor only absorbs numerical noise from heuristic reference routes).
    pub fn incentive(&self, worker: WorkerId, rtt: f64) -> f64 {
        self.mu * (rtt - self.base_rtt[worker.0]).max(0.0)
    }

    /// A fresh, empty coverage tracker for this instance's objective.
    pub fn coverage_tracker(&self) -> CoverageTracker {
        CoverageTracker::new(self.coverage.clone())
    }

    /// Schedules `route` for `worker` against this instance's tasks.
    pub fn schedule(&self, worker: WorkerId, route: &Route) -> Result<Schedule, Infeasibility> {
        schedule_route(&self.workers[worker.0], route, &self.travel, &|id| *self.sensing_task(id))
    }

    /// Checks the structural invariants every solver relies on: finite
    /// coordinates and scalars, non-inverted time ranges and windows, a
    /// non-negative budget and incentive rate, sensing tasks inside the
    /// lattice, and one base reference time per worker. Called automatically
    /// on every deserialization; call it manually after mutating an instance
    /// by hand.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if !(self.budget.is_finite() && self.budget >= 0.0) {
            return Err(InstanceError::InvalidBudget(self.budget));
        }
        if !(self.mu.is_finite() && self.mu >= 0.0) {
            return Err(InstanceError::InvalidIncentiveRate(self.mu));
        }
        if !(self.travel.speed.is_finite() && self.travel.speed > 0.0) {
            return Err(InstanceError::InvalidSpeed(self.travel.speed));
        }

        for (i, w) in self.workers.iter().enumerate() {
            let wid = WorkerId(i);
            finite_point(&w.origin, || format!("worker {i} origin"))?;
            finite_point(&w.destination, || format!("worker {i} destination"))?;
            if !(w.earliest_departure.is_finite() && w.latest_arrival.is_finite()) {
                return Err(InstanceError::NonFinite { what: format!("worker {i} time range") });
            }
            if w.earliest_departure > w.latest_arrival {
                return Err(InstanceError::InvertedTimeRange {
                    worker: wid,
                    earliest: w.earliest_departure,
                    latest: w.latest_arrival,
                });
            }
            for (j, t) in w.travel_tasks.iter().enumerate() {
                finite_point(&t.loc, || format!("worker {i} travel task {j} location"))?;
                if !(t.service.is_finite() && t.service >= 0.0) {
                    return Err(InstanceError::InvalidService {
                        what: format!("worker {i} travel task {j}"),
                        value: t.service,
                    });
                }
            }
        }

        let slots = self.lattice.slots();
        for (j, s) in self.sensing_tasks.iter().enumerate() {
            let sid = SensingTaskId(j);
            finite_point(&s.loc, || format!("sensing task {j} location"))?;
            if !(s.window.start.is_finite() && s.window.end.is_finite()) {
                return Err(InstanceError::NonFinite { what: format!("sensing task {j} window") });
            }
            if s.window.start > s.window.end {
                return Err(InstanceError::InvertedWindow {
                    task: sid,
                    start: s.window.start,
                    end: s.window.end,
                });
            }
            if !(s.service.is_finite()
                && s.service >= 0.0
                && s.window.length() + crate::route::TIME_EPS >= s.service)
            {
                return Err(InstanceError::InvalidService {
                    what: format!("sensing task {j}"),
                    value: s.service,
                });
            }
            let in_grid = self.lattice.grid.contains(&s.loc);
            let cell_ok = s.cell.row < self.lattice.grid.rows
                && s.cell.col < self.lattice.grid.cols
                && s.cell.slot < slots;
            if !in_grid || !cell_ok {
                return Err(InstanceError::TaskOutsideLattice { task: sid });
            }
        }

        if self.base_rtt.len() != self.workers.len() {
            return Err(InstanceError::BaseRttMismatch {
                got: self.base_rtt.len(),
                expected: self.workers.len(),
            });
        }
        for (i, rtt) in self.base_rtt.iter().enumerate() {
            if !(rtt.is_finite() && *rtt >= 0.0) {
                return Err(InstanceError::NonFinite { what: format!("base_rtt[{i}]") });
            }
        }
        Ok(())
    }

    /// The always-valid fallback solution: every worker runs exactly their
    /// TSP reference route over the mandatory travel tasks, no sensing tasks.
    /// Its rtt equals `base_rtt`, so it pays zero incentive, fits any budget,
    /// and passes [`crate::evaluate`] on any valid instance — this is what
    /// resilient pipelines degrade to when every real solver fails.
    pub fn reference_solution(&self) -> Solution {
        let routes = self
            .workers
            .iter()
            .map(|w| {
                let stops: Vec<_> = w.travel_tasks.iter().map(|t| t.loc).collect();
                let (order, _) = solve_open_tsp(&w.origin, &w.destination, &stops);
                Route::new(order.into_iter().map(Stop::Travel).collect())
            })
            .collect();
        Solution { routes }
    }

    /// Objective value `φ` of completing exactly `tasks`.
    pub fn coverage_of(&self, tasks: &[SensingTaskId]) -> f64 {
        let mut tracker = self.coverage_tracker();
        for &id in tasks {
            tracker.add(self.sensing_task(id).cell);
        }
        tracker.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TravelTask;
    use smore_geo::{GridSpec, Point};

    fn small_lattice() -> SensingLattice {
        SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
            horizon: 120.0,
            window_len: 30.0,
            service: 5.0,
        }
    }

    fn worker(extra: Vec<TravelTask>) -> Worker {
        Worker::new(Point::new(0.0, 0.0), Point::new(1200.0, 0.0), 0.0, 120.0, extra)
    }

    #[test]
    fn from_lattice_creates_all_tasks() {
        let inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        assert_eq!(inst.n_tasks(), 4 * 4 * 4);
        assert_eq!(inst.coverage.base.rows, 4);
    }

    #[test]
    fn base_rtt_is_minimal_route() {
        let w = worker(vec![
            TravelTask::new(Point::new(600.0, 0.0), 10.0),
            TravelTask::new(Point::new(300.0, 0.0), 10.0),
        ]);
        let inst = Instance::from_lattice(
            vec![w],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        // Straight line 1200 m = 20 min + 20 min service.
        assert!((inst.base_rtt[0] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn incentive_is_extra_time_times_mu() {
        let inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            2.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        let wid = WorkerId(0);
        assert!((inst.incentive(wid, inst.base_rtt[0] + 7.5) - 15.0).abs() < 1e-9);
        // Never negative.
        assert_eq!(inst.incentive(wid, 0.0), 0.0);
    }

    #[test]
    fn constructed_instances_validate() {
        let inst = Instance::from_lattice(
            vec![worker(vec![TravelTask::new(Point::new(100.0, 100.0), 10.0)])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        assert_eq!(inst.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_nan_coordinates() {
        let mut inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.workers[0].origin.x = f64::NAN;
        assert!(matches!(inst.validate(), Err(InstanceError::NonFinite { .. })));
    }

    #[test]
    fn validate_rejects_inverted_time_range() {
        let mut inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.workers[0].latest_arrival = -5.0;
        assert!(matches!(
            inst.validate(),
            Err(InstanceError::InvertedTimeRange { worker: WorkerId(0), .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_budget_and_mu() {
        let mut inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.budget = -1.0;
        assert_eq!(inst.validate(), Err(InstanceError::InvalidBudget(-1.0)));
        inst.budget = 300.0;
        inst.mu = f64::NAN;
        assert!(matches!(inst.validate(), Err(InstanceError::InvalidIncentiveRate(_))));
    }

    #[test]
    fn validate_rejects_task_outside_lattice() {
        let mut inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.sensing_tasks[0].loc = Point::new(1e6, 1e6);
        assert_eq!(
            inst.validate(),
            Err(InstanceError::TaskOutsideLattice { task: SensingTaskId(0) })
        );
        // A cell index past the base resolution is equally out of lattice.
        let mut inst2 = inst.clone();
        inst2.sensing_tasks[0].loc = inst2.sensing_tasks[1].loc;
        inst2.sensing_tasks[0].cell.slot = 999;
        assert_eq!(
            inst2.validate(),
            Err(InstanceError::TaskOutsideLattice { task: SensingTaskId(0) })
        );
    }

    #[test]
    fn validate_rejects_inverted_window_and_rtt_mismatch() {
        let mut inst = Instance::from_lattice(
            vec![worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.sensing_tasks[3].window.end = inst.sensing_tasks[3].window.start - 1.0;
        assert!(matches!(
            inst.validate(),
            Err(InstanceError::InvertedWindow { task: SensingTaskId(3), .. })
        ));
        inst.sensing_tasks[3].window.end = inst.sensing_tasks[3].window.start + 30.0;
        inst.base_rtt.push(1.0);
        assert_eq!(inst.validate(), Err(InstanceError::BaseRttMismatch { got: 2, expected: 1 }));
    }

    #[test]
    fn reference_solution_passes_evaluation_with_zero_incentive() {
        let w = worker(vec![
            TravelTask::new(Point::new(600.0, 0.0), 10.0),
            TravelTask::new(Point::new(300.0, 0.0), 10.0),
        ]);
        let inst = Instance::from_lattice(
            vec![w, worker(vec![])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        let sol = inst.reference_solution();
        let stats = crate::solution::evaluate(&inst, &sol).expect("reference must validate");
        assert_eq!(stats.completed, 0);
        assert!(stats.total_incentive.abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let inst = Instance::from_lattice(
            vec![worker(vec![TravelTask::new(Point::new(100.0, 100.0), 10.0)])],
            small_lattice(),
            300.0,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_tasks(), inst.n_tasks());
        assert_eq!(back.base_rtt, inst.base_rtt);
    }
}
