//! Wire-format request/response DTOs for the `smore-serve` JSON API.
//!
//! These types define the network contract of the online assignment
//! service: [`SolveRequest`]/[`SolveResponse`] for full USMDW solves,
//! [`FeasibleRequest`]/[`FeasibleResponse`] for single candidate probes,
//! and [`ModelCheckpoint`] for trained-parameter bundles (the same format
//! `smore-cli train` writes to disk, so a saved model file can be POSTed to
//! `/admin/reload` verbatim).
//!
//! They live in `smore-model` (not the serve crate) because they are plain
//! data shared by at least three parties — the server, the CLI, and the
//! load generator — and because [`Instance`] already enforces
//! validate-on-deserialize here: a `SolveRequest` that deserialized
//! successfully carries a structurally sound instance, so handlers never
//! see NaN coordinates or inverted windows from untrusted bytes.

use crate::instance::Instance;
use crate::route::Route;
use serde::{Deserialize, Serialize};

/// Server-side instance generation spec: instead of shipping a full
/// [`Instance`] over the wire, a client may name a seeded generator preset
/// and let the server materialize the instance. This is how the load
/// generator keeps request bodies tiny (and how the serving stack stays
/// exercisable in offline builds whose JSON layer is stubbed out — the spec
/// also has a query-string form, e.g.
/// `POST /v1/solve?dataset=delivery&gen_seed=7`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerateSpec {
    /// Dataset preset name: `delivery`, `tourism`, or `lade`.
    pub dataset: String,
    /// Scale preset: `small` (default) or `paper`.
    #[serde(default)]
    pub scale: Option<String>,
    /// Generator seed; the same seed always yields the same instance.
    #[serde(default)]
    pub seed: u64,
}

/// Body of `POST /v1/solve`: one USMDW instance (inline or by generator
/// spec) plus solve options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The instance to solve, validated on deserialize. Exactly one of
    /// `instance` and `gen` must be present.
    #[serde(default)]
    pub instance: Option<Instance>,
    /// Server-side generation spec, the inline-instance alternative.
    #[serde(default, rename = "gen")]
    pub generate: Option<GenerateSpec>,
    /// Selection method: `smore` (requires a loaded checkpoint), `greedy`,
    /// `ratio`, `random`, or `auto` (default: `smore` when a checkpoint is
    /// loaded, else `greedy`).
    #[serde(default)]
    pub method: Option<String>,
    /// Per-request wall-clock budget in milliseconds, threaded into the
    /// anytime solvers as a [`crate::Deadline`]; absent means unbounded.
    #[serde(default)]
    pub budget_ms: Option<u64>,
    /// Seed for stochastic methods (`random`); deterministic methods ignore
    /// it but it still participates in the response echo.
    #[serde(default)]
    pub seed: Option<u64>,
}

/// Body of a successful `POST /v1/solve` response: the assignment, its
/// routes, and the coverage/incentive statistics.
///
/// Contains no timestamps or host-dependent fields: identical request bytes
/// against the same checkpoint must produce byte-identical response bodies
/// regardless of thread-pool size or run (the serving determinism
/// contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveResponse {
    /// The method that actually ran (after `auto` resolution).
    pub method: String,
    /// Version of the checkpoint used (0 when no model was involved).
    pub model_version: u64,
    /// Objective value `φ` of the returned assignment.
    pub objective: f64,
    /// Number of completed sensing tasks.
    pub completed: usize,
    /// Total incentive paid.
    pub total_incentive: f64,
    /// Incentive paid to each worker.
    pub per_worker_incentive: Vec<f64>,
    /// Route travel time of each worker.
    pub per_worker_rtt: Vec<f64>,
    /// One working route per worker.
    pub routes: Vec<Route>,
    /// True when the requested model path did *not* produce this answer —
    /// the circuit breaker was open or the model episode failed, and a
    /// baseline heuristic served the request instead. Omitted when false,
    /// so healthy responses are byte-identical to pre-degradation builds.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub degraded: bool,
    /// Why the response is degraded (present iff `degraded`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub degraded_reason: Option<String>,
}

/// Body of `POST /v1/feasible`: probe whether one `(worker, task)` pair
/// admits a feasible route extension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeasibleRequest {
    /// The instance to probe against (inline form).
    #[serde(default)]
    pub instance: Option<Instance>,
    /// Server-side generation spec, the inline-instance alternative.
    #[serde(default, rename = "gen")]
    pub generate: Option<GenerateSpec>,
    /// Worker index (must be `< n_workers`).
    pub worker: usize,
    /// Sensing-task index (must be `< n_tasks`).
    pub task: usize,
}

/// Body of a successful `POST /v1/feasible` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibleResponse {
    /// Whether the pair admits a feasible route.
    pub feasible: bool,
    /// Route travel time with the task added (present iff feasible).
    #[serde(default)]
    pub rtt: Option<f64>,
    /// Incentive delta versus the worker's mandatory-only route (present
    /// iff feasible).
    #[serde(default)]
    pub delta_in: Option<f64>,
    /// The extended route (present iff feasible).
    #[serde(default)]
    pub route: Option<Route>,
}

/// Training progress carried inside a checkpoint, enabling
/// `smore-cli train --resume` to continue an interrupted run from the last
/// epoch whose checkpoint reached disk intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Completed imitation warmup epochs.
    pub warmup_done: usize,
    /// Completed REINFORCE epochs.
    pub epochs_done: usize,
}

/// A trained SMORE parameter bundle: TASNet configuration plus serialized
/// policy and critic parameter stores. `smore-cli train` writes this format
/// to disk and `POST /admin/reload` accepts it over the wire, so retrained
/// weights hot-swap into a running server without a restart.
///
/// Checkpoints written by `smore-cli train` are *sealed*: `checksum` holds
/// an FNV-1a digest of every other field, and loaders reject files whose
/// content no longer matches it (a torn or truncated write). Legacy
/// checkpoints without a checksum still load — the field is optional at the
/// serde layer so old files and hand-built test fixtures stay valid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Grid rows of the TASNet configuration the parameters belong to.
    pub grid_rows: usize,
    /// Grid columns of the configuration.
    pub grid_cols: usize,
    /// Embedding width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Serialized policy parameters (`ParamStore` JSON).
    pub policy: String,
    /// Serialized critic parameters (`ParamStore` JSON).
    pub critic: String,
    /// FNV-1a digest of all other fields; `None` on legacy checkpoints.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub checksum: Option<u64>,
    /// Training progress at the time this checkpoint was written; `None`
    /// for finished models and legacy checkpoints.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub progress: Option<TrainProgress>,
}

/// Uniform JSON error body for every non-2xx API response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable failure description.
    pub error: String,
}

/// One `(task, worker)` pair in an events response. A named struct rather
/// than a tuple so the wire shape is self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventsPair {
    /// Sensing-task index.
    pub task: usize,
    /// Worker index.
    pub worker: usize,
}

/// Cumulative task-lifecycle accounting carried in every events response.
/// The counts reconcile exactly: `arrived` equals the sum of the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventsAccounting {
    /// Tasks that ever entered the world (initial instance + arrivals).
    pub arrived: usize,
    /// Tasks still awaiting a decision.
    pub pending: usize,
    /// Tasks committed to a worker's route suffix.
    pub committed: usize,
    /// Tasks whose sensing stop has been executed.
    pub completed: usize,
    /// Tasks explicitly rejected (feasible but unaffordable).
    pub rejected: usize,
    /// Tasks whose window closed while pending.
    pub expired: usize,
    /// Tasks cancelled by the client.
    pub cancelled: usize,
}

/// Per-worker snapshot in an events response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsWorker {
    /// Worker index.
    pub worker: usize,
    /// Executed route prefix length (stops already performed).
    pub executed: usize,
    /// Total stops on the worker's current route.
    pub stops: usize,
    /// Route travel time of the current route.
    pub rtt: f64,
    /// Incentive committed to this worker so far.
    pub incentive: f64,
    /// Whether the worker has dropped out (incentive frozen).
    pub dropped: bool,
}

/// Body of a successful `POST /v1/events` response: what the batch changed
/// plus a full post-batch world snapshot. Like [`SolveResponse`] it carries
/// no timestamps or host-dependent fields — identical event sequences must
/// produce byte-identical response bodies regardless of pool size or batch
/// admission (the serving determinism contract extended to the online path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsResponse {
    /// Echo of the session id the batch applied to.
    pub session: String,
    /// Echo of the applied sequence number.
    pub seq: u64,
    /// World version after the batch (increments by one per batch).
    pub version: u64,
    /// Simulated time after the batch.
    pub sim_time: f64,
    /// Replan mode that ran: `suffix` or `full_horizon`.
    pub mode: String,
    /// Task ids that arrived in this batch.
    pub arrived: Vec<usize>,
    /// Pairs committed by this batch's replan pass.
    pub committed: Vec<EventsPair>,
    /// Pairs completed by this batch's progress events.
    pub completed: Vec<EventsPair>,
    /// Tasks rejected by this batch's replan pass.
    pub rejected: Vec<usize>,
    /// Tasks expired by this batch's replan pass.
    pub expired: Vec<usize>,
    /// Tasks cancelled by this batch.
    pub cancelled: Vec<usize>,
    /// Previously committed tasks released back to pending by drops.
    pub released: Vec<usize>,
    /// Workers that dropped in this batch.
    pub dropped_workers: Vec<usize>,
    /// Cancels of already-terminal tasks (ignored, counted).
    pub stale_cancels: usize,
    /// Transient (worker, task) offers probed by the replan pass.
    pub offered: u64,
    /// Objective after the batch: `φ − λ · |rejected|`.
    pub objective: f64,
    /// Coverage term `φ(completed ∪ committed)`.
    pub coverage: f64,
    /// Total rejection penalty `λ · |rejected|`.
    pub penalty: f64,
    /// Total committed incentive.
    pub spent: f64,
    /// The instance budget `B`.
    pub budget: f64,
    /// Sum of executed route-prefix lengths across workers.
    pub committed_prefix: usize,
    /// Cumulative lifecycle accounting (reconciles exactly).
    pub accounting: EventsAccounting,
    /// Per-worker route snapshots.
    pub workers: Vec<EventsWorker>,
    /// FNV-1a 64 checksum of the canonical post-batch state, as 16 lowercase
    /// hex digits. Clients compare this across replays to verify determinism.
    pub checksum: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The offline shadow build stubs serde_json out (round trips are
    /// non-functional there); JSON-dependent assertions skip themselves.
    fn serde_is_functional() -> bool {
        serde_json::from_str::<u64>("1").is_ok()
    }

    #[test]
    fn solve_request_defaults_are_permissive() {
        if !serde_is_functional() {
            return;
        }
        let req: SolveRequest =
            serde_json::from_str(r#"{"gen":{"dataset":"delivery","seed":7}}"#).unwrap();
        assert!(req.instance.is_none());
        assert_eq!(req.generate.as_ref().map(|g| g.seed), Some(7));
        assert_eq!(req.method, None);
        assert_eq!(req.budget_ms, None);
    }

    #[test]
    fn feasible_request_requires_worker_and_task() {
        if !serde_is_functional() {
            return;
        }
        assert!(serde_json::from_str::<FeasibleRequest>(r#"{"worker":0}"#).is_err());
        let req: FeasibleRequest =
            serde_json::from_str(r#"{"worker":1,"task":2,"gen":{"dataset":"lade"}}"#).unwrap();
        assert_eq!((req.worker, req.task), (1, 2));
    }

    #[test]
    fn invalid_inline_instance_is_rejected_on_deserialize() {
        if !serde_is_functional() {
            return;
        }
        use crate::tasks::SensingLattice;
        use crate::worker::Worker;
        use smore_geo::{GridSpec, Point, TravelTimeModel};
        let lattice = SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
            horizon: 120.0,
            window_len: 30.0,
            service: 5.0,
        };
        let worker = Worker::new(Point::new(0.0, 0.0), Point::new(1200.0, 0.0), 0.0, 120.0, vec![]);
        // Serialize with a sentinel budget, then corrupt it in the JSON: a
        // syntactically valid request whose embedded instance violates
        // validation must fail at the serde boundary, not inside a handler.
        let mut inst = Instance::from_lattice(
            vec![worker],
            lattice,
            123456.75,
            1.0,
            TravelTimeModel::PAPER_DEFAULT,
            0.5,
        );
        inst.budget = 123456.75;
        let inst_json = serde_json::to_string(&inst).unwrap();
        let ok_body = format!("{{\"worker\":0,\"task\":0,\"instance\":{inst_json}}}");
        assert!(serde_json::from_str::<FeasibleRequest>(&ok_body).is_ok());
        let bad_body = ok_body.replace("123456.75", "-1.0");
        assert_ne!(ok_body, bad_body, "sentinel budget must appear in the JSON");
        assert!(serde_json::from_str::<FeasibleRequest>(&bad_body).is_err());
    }

    #[test]
    fn error_body_roundtrips() {
        if !serde_is_functional() {
            return;
        }
        let e = ErrorBody { error: "nope".into() };
        let back: ErrorBody = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
