//! Wall-clock solve budgets for anytime solving.
//!
//! A [`Deadline`] is threaded through every [`crate::UsmdwSolver`] (and, in
//! `smore-core`, through the candidate-generation engine) so callers can put
//! a hard time cap on a solve. Solvers treat the deadline as *anytime*: when
//! it expires they stop improving and return the best valid solution built so
//! far rather than aborting.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A wall-clock budget for a solve, possibly unbounded.
///
/// Cheap to copy; pass it by value. Checking [`Deadline::expired`] costs one
/// monotonic-clock read, so inner loops should check it once per candidate or
/// per iteration rather than per arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// An unbounded deadline: never expires.
    pub fn none() -> Self {
        Deadline { expires_at: None }
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline { expires_at: Some(Instant::now() + budget) }
    }

    /// A deadline `millis` milliseconds from now.
    pub fn after_millis(millis: u64) -> Self {
        Self::after(Duration::from_millis(millis))
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { expires_at: Some(instant) }
    }

    /// Whether this deadline never expires.
    pub fn is_unbounded(&self) -> bool {
        self.expires_at.is_none()
    }

    /// Whether the budget has run out. Unbounded deadlines never expire.
    pub fn expired(&self) -> bool {
        match self.expires_at {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }

    /// Remaining budget, or `None` when unbounded. Returns
    /// `Some(Duration::ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// Remaining budget clamped to `cap` (treats unbounded as `cap`). Useful
    /// for solvers that already carry their own internal time cap.
    pub fn remaining_or(&self, cap: Duration) -> Duration {
        match self.remaining() {
            None => cap,
            Some(r) => r.min(cap),
        }
    }

    /// The tighter of two deadlines.
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.expires_at, other.expires_at) {
            (None, None) => Deadline::none(),
            (Some(t), None) | (None, Some(t)) => Deadline::at(t),
            (Some(a), Some(b)) => Deadline::at(a.min(b)),
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Self::none()
    }
}

/// Serializable spec for a deadline: a millisecond budget, or absent for
/// unbounded. Converted to a live [`Deadline`] at the moment the solve
/// starts (an `Instant` itself cannot be serialized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeadlineSpec {
    /// Budget in milliseconds; `None` means unbounded.
    pub budget_ms: Option<u64>,
}

impl DeadlineSpec {
    /// Starts the clock: converts the spec into a live deadline.
    pub fn start(&self) -> Deadline {
        match self.budget_ms {
            None => Deadline::none(),
            Some(ms) => Deadline::after_millis(ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.remaining_or(Duration::from_secs(3)), Duration::from_secs(3));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        assert_eq!(d.remaining_or(Duration::from_millis(5)), Duration::from_millis(5));
    }

    #[test]
    fn min_takes_tighter_deadline() {
        let tight = Deadline::after(Duration::ZERO);
        let loose = Deadline::after(Duration::from_secs(3600));
        assert!(tight.min(loose).expired());
        assert!(loose.min(tight).expired());
        assert!(!loose.min(Deadline::none()).expired());
        assert!(Deadline::none().min(Deadline::none()).is_unbounded());
    }

    #[test]
    fn spec_starts_clock() {
        assert!(DeadlineSpec { budget_ms: None }.start().is_unbounded());
        assert!(DeadlineSpec { budget_ms: Some(0) }.start().expired());
    }
}
