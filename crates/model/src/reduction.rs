//! Executable form of the NP-hardness reduction (Lemma 1).
//!
//! The paper proves USMDW NP-hard by reducing the Orienteering Problem (OP):
//! given unit-score vertices and a travel-time limit `T_max`, an OP instance
//! maps to a USMDW instance with a single worker with no travel tasks, one
//! sensing task per vertex with window `[0, T_max]` and zero service time,
//! infinite budget, and `α = 0` (so `φ = log2 |S'|`, monotone in the number
//! of visited vertices). Maximizing `φ` is then exactly maximizing the OP
//! score. This module makes the reduction executable so tests can verify it.

use crate::instance::Instance;
use crate::tasks::{SensingLattice, SensingTask};
use crate::worker::Worker;
use smore_geo::{
    CoverageConfig, GridSpec, Point, StCell, StResolution, TimeWindow, TravelTimeModel,
};

/// An Orienteering Problem instance with unit vertex scores: find a path from
/// `start` to `end` visiting a subset of `vertices` maximizing the number of
/// visits, with total travel time at most `t_max`.
#[derive(Debug, Clone)]
pub struct OpInstance {
    /// Path start.
    pub start: Point,
    /// Path end.
    pub end: Point,
    /// Score-carrying vertices (each worth 1).
    pub vertices: Vec<Point>,
    /// Travel-time limit `T_max` in minutes.
    pub t_max: f64,
    /// Travel speed (meters per minute) converting distances to times.
    pub speed: f64,
}

/// Transforms an OP instance into an equivalent USMDW instance per Lemma 1.
///
/// The returned instance has one worker (empty mandatory set, time range
/// `[0, T_max]`), one zero-service sensing task per vertex available over the
/// whole horizon, effectively unlimited budget, and `α = 0`. A USMDW solution
/// completing `k` tasks has objective `log2 k`, so objective-maximal USMDW
/// solutions visit exactly the OP-optimal number of vertices.
pub fn op_to_usmdw(op: &OpInstance) -> Instance {
    let worker = Worker::new(op.start, op.end, 0.0, op.t_max, Vec::new());

    // Bounding box for a degenerate one-cell-per-vertex lattice; the grid is
    // only used for NN featurization, never for task creation here.
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (
        op.start.x.min(op.end.x),
        op.start.y.min(op.end.y),
        op.start.x.max(op.end.x),
        op.start.y.max(op.end.y),
    );
    for v in &op.vertices {
        min_x = min_x.min(v.x);
        min_y = min_y.min(v.y);
        max_x = max_x.max(v.x);
        max_y = max_y.max(v.y);
    }
    let pad = 1.0;
    let grid = GridSpec::new(
        Point::new(min_x - pad, min_y - pad),
        (max_x - min_x) + 2.0 * pad,
        (max_y - min_y) + 2.0 * pad,
        1,
        op.vertices.len().max(1),
    );
    let lattice = SensingLattice {
        grid,
        horizon: op.t_max.max(1.0),
        window_len: op.t_max.max(1.0),
        service: 0.0,
    };

    let tasks: Vec<SensingTask> = op
        .vertices
        .iter()
        .enumerate()
        .map(|(i, &loc)| {
            SensingTask::new(
                loc,
                TimeWindow::new(0.0, op.t_max),
                0.0,
                StCell { row: 0, col: i, slot: 0 },
            )
        })
        .collect();

    // α = 0: the objective reduces to log2 |S'|.
    let coverage = CoverageConfig::new(0.0, StResolution::new(1, op.vertices.len().max(1), 1));

    Instance::from_parts(
        worker.into_iter(),
        tasks,
        lattice,
        coverage,
        f64::INFINITY,
        1.0,
        TravelTimeModel::new(op.speed),
    )
}

// Helper so a single worker can be passed where a Vec is expected.
trait IntoWorkerVec {
    fn into_iter(self) -> Vec<Worker>;
}
impl IntoWorkerVec for Worker {
    fn into_iter(self) -> Vec<Worker> {
        vec![self]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, Stop};
    use crate::solution::{evaluate, Solution};
    use crate::tasks::SensingTaskId;

    fn op() -> OpInstance {
        OpInstance {
            start: Point::new(0.0, 0.0),
            end: Point::new(100.0, 0.0),
            vertices: vec![
                Point::new(25.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(75.0, 0.0),
                Point::new(50.0, 200.0), // far off-path vertex
            ],
            t_max: 120.0,
            speed: 1.0,
        }
    }

    #[test]
    fn objective_is_log2_of_visits() {
        let inst = op_to_usmdw(&op());
        assert_eq!(inst.n_workers(), 1);
        assert_eq!(inst.n_tasks(), 4);
        // Visit the three on-path vertices: 100 time units ≤ 120.
        let sol = Solution {
            routes: vec![Route::new(vec![
                Stop::Sensing(SensingTaskId(0)),
                Stop::Sensing(SensingTaskId(1)),
                Stop::Sensing(SensingTaskId(2)),
            ])],
        };
        let stats = evaluate(&inst, &sol).unwrap();
        assert!((stats.objective - 3f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn time_limit_transfers() {
        let inst = op_to_usmdw(&op());
        // Including the far vertex exceeds T_max = 120 (detour alone is 400).
        let sol = Solution {
            routes: vec![Route::new(vec![
                Stop::Sensing(SensingTaskId(1)),
                Stop::Sensing(SensingTaskId(3)),
            ])],
        };
        assert!(evaluate(&inst, &sol).is_err());
    }

    #[test]
    fn budget_never_binds() {
        let inst = op_to_usmdw(&op());
        assert!(inst.budget.is_infinite());
    }

    #[test]
    fn more_visits_always_better() {
        // With α = 0, φ is strictly increasing in |S'| — the property the
        // reduction relies on to equate USMDW optimality with OP optimality.
        let inst = op_to_usmdw(&op());
        let phi = |k: &[usize]| {
            inst.coverage_of(&k.iter().map(|&i| SensingTaskId(i)).collect::<Vec<_>>())
        };
        assert!(phi(&[0, 1]) > phi(&[0]));
        assert!(phi(&[0, 1, 2]) > phi(&[0, 1]));
        // ... and independent of WHICH vertices are chosen (unit scores).
        assert!((phi(&[0, 1]) - phi(&[2, 3])).abs() < 1e-12);
    }
}
