//! Shared mutable assignment state used by all iterative solvers.
//!
//! SMORE (Algorithm 1), the greedy baselines and the ablations all maintain
//! the same bookkeeping — per-worker routes, incentives, the set of completed
//! sensing tasks, the coverage tracker and the remaining budget. This module
//! centralizes it (the hashmap `M` of the paper's pseudocode).

use crate::instance::Instance;
use crate::route::Route;
use crate::solution::Solution;
use crate::tasks::SensingTaskId;
use crate::worker::WorkerId;
use smore_geo::CoverageTracker;

/// The evolving assignment `M` plus remaining budget of Algorithm 1.
#[derive(Debug, Clone)]
pub struct AssignmentState {
    /// Current working route of each worker (starts as the worker's
    /// reference route over mandatory stops only — callers set it).
    pub routes: Vec<Route>,
    /// Current route travel time of each worker.
    pub rtts: Vec<f64>,
    /// Incentive currently owed to each worker.
    pub incentives: Vec<f64>,
    /// Sensing tasks assigned to each worker, in assignment order.
    pub assigned: Vec<Vec<SensingTaskId>>,
    /// Global completed-task flags (a task can be completed by one worker).
    pub completed: Vec<bool>,
    /// Incrementally maintained coverage of the completed tasks.
    pub coverage: CoverageTracker,
    /// Remaining budget `B_rest`.
    pub budget_rest: f64,
}

impl AssignmentState {
    /// Fresh state: no sensing tasks assigned, full budget remaining.
    ///
    /// Routes are initialized to empty; callers that schedule routes (rather
    /// than just track assignments) should overwrite them with each worker's
    /// reference route.
    pub fn new(instance: &Instance) -> Self {
        let n = instance.n_workers();
        Self {
            routes: vec![Route::empty(); n],
            rtts: instance.base_rtt.clone(),
            incentives: vec![0.0; n],
            assigned: vec![Vec::new(); n],
            completed: vec![false; instance.n_tasks()],
            coverage: instance.coverage_tracker(),
            budget_rest: instance.budget,
        }
    }

    /// Records the assignment of `task` to `worker` with the worker's new
    /// route and route travel time. Updates incentives, remaining budget,
    /// completion flags and coverage.
    ///
    /// Returns the incentive delta charged against the budget.
    pub fn assign(
        &mut self,
        instance: &Instance,
        worker: WorkerId,
        task: SensingTaskId,
        route: Route,
        rtt: f64,
    ) -> f64 {
        debug_assert!(!self.completed[task.0], "task {} already completed", task.0);
        let new_incentive = instance.incentive(worker, rtt);
        let delta = new_incentive - self.incentives[worker.0];
        self.budget_rest -= delta;
        self.incentives[worker.0] = new_incentive;
        self.rtts[worker.0] = rtt;
        self.routes[worker.0] = route;
        self.assigned[worker.0].push(task);
        self.completed[task.0] = true;
        self.coverage.add(instance.sensing_task(task).cell);
        delta
    }

    /// Current objective value `φ` of the completed tasks.
    pub fn objective(&self) -> f64 {
        self.coverage.value()
    }

    /// Total number of completed sensing tasks.
    pub fn completed_count(&self) -> usize {
        self.coverage.len()
    }

    /// Marginal coverage gain of completing `task` next (the `Δφ` heuristic
    /// signal and the MDP reward).
    pub fn gain(&self, instance: &Instance, task: SensingTaskId) -> f64 {
        self.coverage.gain(instance.sensing_task(task).cell)
    }

    /// Converts into a final [`Solution`].
    pub fn into_solution(self) -> Solution {
        Solution { routes: self.routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Stop;
    use crate::tasks::{SensingLattice, TravelTask};
    use crate::worker::Worker;
    use smore_geo::{GridSpec, Point, TravelTimeModel};

    fn instance() -> Instance {
        let lattice = SensingLattice {
            grid: GridSpec::new(Point::new(0.0, 0.0), 1200.0, 1200.0, 4, 4),
            horizon: 120.0,
            window_len: 30.0,
            service: 5.0,
        };
        let w = Worker::new(
            Point::new(0.0, 0.0),
            Point::new(1200.0, 0.0),
            0.0,
            120.0,
            vec![TravelTask::new(Point::new(600.0, 0.0), 10.0)],
        );
        Instance::from_lattice(vec![w], lattice, 300.0, 1.0, TravelTimeModel::PAPER_DEFAULT, 0.5)
    }

    #[test]
    fn assign_updates_budget_and_coverage() {
        let inst = instance();
        let mut state = AssignmentState::new(&inst);
        let task = SensingTaskId(0);
        let route = Route::new(vec![Stop::Sensing(task), Stop::Travel(0)]);
        let rtt = inst.schedule(WorkerId(0), &route).unwrap().rtt;

        let predicted_gain = state.gain(&inst, task);
        let delta = state.assign(&inst, WorkerId(0), task, route, rtt);

        assert!(delta > 0.0, "detour must cost incentive");
        assert!((state.budget_rest - (inst.budget - delta)).abs() < 1e-9);
        assert_eq!(state.completed_count(), 1);
        assert!(state.completed[0]);
        assert!((state.objective() - predicted_gain).abs() < 1e-9);
    }

    #[test]
    fn incentive_delta_is_difference_not_total() {
        let inst = instance();
        let mut state = AssignmentState::new(&inst);
        let t0 = SensingTaskId(0);
        let t1 = SensingTaskId(4); // different spatial cell
        let r1 = Route::new(vec![Stop::Sensing(t0), Stop::Travel(0)]);
        let rtt1 = inst.schedule(WorkerId(0), &r1).unwrap().rtt;
        let d1 = state.assign(&inst, WorkerId(0), t0, r1, rtt1);

        let r2 = Route::new(vec![Stop::Sensing(t0), Stop::Sensing(t1), Stop::Travel(0)]);
        let rtt2 = inst.schedule(WorkerId(0), &r2).unwrap().rtt;
        let d2 = state.assign(&inst, WorkerId(0), t1, r2, rtt2);

        let total = inst.incentive(WorkerId(0), rtt2);
        assert!((d1 + d2 - total).abs() < 1e-9, "deltas must telescope to the total");
        assert!((state.budget_rest - (inst.budget - total)).abs() < 1e-9);
    }

    #[test]
    fn into_solution_preserves_routes() {
        let inst = instance();
        let mut state = AssignmentState::new(&inst);
        state.routes[0] = Route::new(vec![Stop::Travel(0)]);
        let sol = state.into_solution();
        assert_eq!(sol.routes[0].stops, vec![Stop::Travel(0)]);
    }
}
