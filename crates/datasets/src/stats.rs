//! Distribution statistics over generated instances — the data behind
//! Figure 4 ("Data Distributions": number of travel tasks per worker and
//! number of workers per instance, per dataset).

use serde::{Deserialize, Serialize};
use smore_model::Instance;

/// A simple integer histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `counts[v]` = number of observations equal to `v`.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.iter().enumerate().map(|(v, &c)| v * c).sum::<usize>() as f64 / total as f64
    }

    /// The largest observed value.
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Renders an ASCII bar chart (one row per value with observations).
    pub fn render(&self, label: &str) -> String {
        let mut out = String::new();
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        out.push_str(&format!("{label} (n={}, mean={:.2})\n", self.total(), self.mean()));
        for (v, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat((c * 40).div_ceil(peak));
            out.push_str(&format!("{v:>4} | {bar} {c}\n"));
        }
        out
    }
}

/// Figure-4 statistics for a collection of instances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Distribution of the number of travel tasks per worker.
    pub travel_tasks_per_worker: Histogram,
    /// Distribution of the number of workers per instance.
    pub workers_per_instance: Histogram,
}

impl DatasetStats {
    /// Computes the statistics over `instances`.
    pub fn collect(instances: &[Instance]) -> Self {
        let mut stats = DatasetStats::default();
        for inst in instances {
            stats.workers_per_instance.record(inst.n_workers());
            for w in &inst.workers {
                stats.travel_tasks_per_worker.record(w.travel_tasks.len());
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InstanceGenerator;
    use crate::spec::{DatasetKind, DatasetSpec, Scale};

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::default();
        for v in [1, 2, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert!((h.mean() - 14.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max(), 3);
        let rendered = h.render("test");
        assert!(rendered.contains("   3 | "));
    }

    #[test]
    fn collected_stats_are_right_skewed() {
        let g = InstanceGenerator::new(DatasetSpec::of(DatasetKind::Delivery, Scale::Small), 3);
        let split = g.gen_split(3);
        let stats = DatasetStats::collect(&split.train);
        let h = &stats.travel_tasks_per_worker;
        assert!(h.total() > 0);
        // Right-skew: the mean sits in the lower half of the observed range.
        let (lo, hi) = g.spec().travel_tasks_per_worker;
        assert!(h.mean() < (lo + hi) as f64 / 2.0 + 1.0, "mean {} not skewed", h.mean());
    }
}
