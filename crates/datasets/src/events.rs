//! Seeded arrival-stream generator for the online (`/v1/events`) subsystem.
//!
//! Emits a replayable event file: one JSON envelope per line (JSONL), the
//! exact bodies `POST /v1/events` accepts. Line 0 creates the session from
//! the same `(dataset, scale, seed)` generator preset the server resolves,
//! so client and server agree on the instance without shipping it; later
//! lines advance simulated time and inject task arrivals, worker progress,
//! cancellations, and (rarely) worker drops.
//!
//! Envelope JSON is assembled by hand (`format!`, not a serializer) so the
//! emitted bytes are identical in normal builds and in offline builds whose
//! serde stand-in cannot round-trip — the event-file checksum contract in
//! CI depends on that.
//!
//! Every generated stream is *valid by construction*: progress counters are
//! monotone and bounded by each worker's mandatory-stop count, dropped
//! workers never report progress again, and cancellations only name task
//! ids that exist (cancelling an already-terminal task is a counted no-op
//! server-side, so stale cancels are fine to emit).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gen::InstanceGenerator;
use crate::spec::{DatasetKind, DatasetSpec, Scale};

/// Parameters of one synthetic event stream.
#[derive(Debug, Clone)]
pub struct EventStreamSpec {
    /// Dataset preset named in the session-creating envelope.
    pub kind: DatasetKind,
    /// Scale preset.
    pub scale: Scale,
    /// Generator seed (instance and stream randomness both derive from it).
    pub seed: u64,
    /// Session id carried by every envelope.
    pub session: String,
    /// Batches after the session-creating one (envelopes total `batches+1`).
    pub batches: usize,
    /// Maximum task arrivals injected per batch (each batch draws
    /// `0..=max`).
    pub max_arrivals_per_batch: usize,
    /// Replan mode label carried by every envelope (`suffix` or
    /// `full_horizon`).
    pub mode: String,
}

impl EventStreamSpec {
    /// The default replayable preset for `(kind, scale, seed)`: 8 batches,
    /// up to 3 arrivals each, suffix replanning.
    pub fn preset(kind: DatasetKind, scale: Scale, seed: u64) -> Self {
        let dataset = dataset_label(kind);
        EventStreamSpec {
            kind,
            scale,
            seed,
            session: format!("ev-{dataset}-{seed}"),
            batches: 8,
            max_arrivals_per_batch: 3,
            mode: "suffix".to_string(),
        }
    }
}

fn dataset_label(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Delivery => "delivery",
        DatasetKind::Tourism => "tourism",
        DatasetKind::LaDe => "lade",
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Generates the stream: one JSON envelope per returned line, ready to be
/// written as a JSONL file or POSTed verbatim in order.
pub fn gen_event_stream(spec: &EventStreamSpec) -> Vec<String> {
    let dataset_spec = DatasetSpec::of(spec.kind, spec.scale);
    // The same instance the server will materialize from the gen spec —
    // used only to bound progress/cancel events to valid targets.
    let generator = InstanceGenerator::new(dataset_spec.clone(), spec.seed);
    let instance = generator.gen_default(&mut SmallRng::seed_from_u64(spec.seed));
    let n_workers = instance.n_workers();
    let n_tasks = instance.n_tasks();
    // A worker's route always contains its mandatory travel stops;
    // progress bounded by that count can never overrun the route even
    // after replans rearrange sensing insertions.
    let max_progress: Vec<usize> =
        (0..n_workers).map(|w| instance.workers[w].travel_tasks.len()).collect();

    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5851_F42D_4C95_7F2D);
    let mut lines = Vec::with_capacity(spec.batches + 1);
    lines.push(format!(
        "{{\"session\":\"{}\",\"seq\":0,\"mode\":\"{}\",\"gen\":{{\"dataset\":\"{}\",\
         \"scale\":\"{}\",\"seed\":{}}},\"events\":[{{\"type\":\"tick\",\"now\":0}}]}}",
        spec.session,
        spec.mode,
        dataset_label(spec.kind),
        scale_label(spec.scale),
        spec.seed,
    ));

    let horizon = dataset_spec.horizon;
    let mut progress = vec![0usize; n_workers];
    let mut dropped = vec![false; n_workers];
    for batch in 1..=spec.batches {
        // Ticks sweep ~80% of the horizon so late arrivals still fit
        // their windows instead of expiring on arrival.
        let now = horizon * 0.8 * batch as f64 / spec.batches.max(1) as f64;
        let mut events = vec![format!("{{\"type\":\"tick\",\"now\":{now}}}")];

        let arrivals = rng.gen_range(0..=spec.max_arrivals_per_batch);
        for _ in 0..arrivals {
            let x = rng.gen_range(0.05..0.95) * dataset_spec.region_width;
            let y = rng.gen_range(0.05..0.95) * dataset_spec.region_height;
            let lead: f64 = rng.gen_range(5.0..15.0);
            let stretch: f64 = rng.gen_range(1.0..2.0);
            let start = now + lead;
            let end = f64::min(start + dataset_spec.window_len * stretch, horizon);
            if end - start <= dataset_spec.sensing_service {
                continue;
            }
            events.push(format!(
                "{{\"type\":\"task_arrived\",\"x\":{x},\"y\":{y},\"window_start\":{start},\
                 \"window_end\":{end},\"service\":{}}}",
                dataset_spec.sensing_service,
            ));
        }

        // Some workers advance one mandatory stop.
        for w in 0..n_workers {
            if !dropped[w] && progress[w] < max_progress[w] && rng.gen_range(0.0..1.0) < 0.3 {
                progress[w] += 1;
                events.push(format!(
                    "{{\"type\":\"worker_progress\",\"worker\":{w},\"completed_stops\":{}}}",
                    progress[w],
                ));
            }
        }

        // Rare cancels (possibly stale — the server counts those as
        // no-ops) and at most one rare drop per stream tail.
        if n_tasks > 0 && rng.gen_range(0.0..1.0) < 0.25 {
            let task = rng.gen_range(0..n_tasks);
            events.push(format!("{{\"type\":\"task_cancelled\",\"task\":{task}}}"));
        }
        if batch == spec.batches / 2 && n_workers > 1 && rng.gen_range(0.0..1.0) < 0.5 {
            let w = n_workers - 1;
            if !dropped[w] {
                dropped[w] = true;
                events.push(format!("{{\"type\":\"worker_dropped\",\"worker\":{w}}}"));
            }
        }

        lines.push(format!(
            "{{\"session\":\"{}\",\"seq\":{batch},\"mode\":\"{}\",\"events\":[{}]}}",
            spec.session,
            spec.mode,
            events.join(","),
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sequenced() {
        let spec = EventStreamSpec::preset(DatasetKind::Delivery, Scale::Small, 7);
        let a = gen_event_stream(&spec);
        let b = gen_event_stream(&spec);
        assert_eq!(a, b, "same spec must emit identical bytes");
        assert_eq!(a.len(), spec.batches + 1);
        for (i, line) in a.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i}")), "line {i}: {line}");
            assert!(line.contains("\"session\":\"ev-delivery-7\""), "line {i}: {line}");
        }
        assert!(a[0].contains("\"gen\":{\"dataset\":\"delivery\",\"scale\":\"small\",\"seed\":7}"));
        assert!(!a[1].contains("\"gen\""), "only seq 0 carries the instance source");
    }

    #[test]
    fn progress_events_are_monotone_and_bounded() {
        for seed in [1, 7, 21] {
            let spec = EventStreamSpec::preset(DatasetKind::Delivery, Scale::Small, seed);
            let generator =
                InstanceGenerator::new(DatasetSpec::of(spec.kind, spec.scale), spec.seed);
            let instance = generator.gen_default(&mut SmallRng::seed_from_u64(spec.seed));
            let mut last = vec![0usize; instance.n_workers()];
            for line in gen_event_stream(&spec) {
                // Scrape worker_progress pairs out of the hand-built JSON.
                let mut rest = line.as_str();
                while let Some(pos) = rest.find("\"worker_progress\",\"worker\":") {
                    let tail = &rest[pos + 27..];
                    let worker: usize =
                        tail[..tail.find(',').expect("comma")].parse().expect("worker id");
                    let stops_tail =
                        &tail[tail.find("\"completed_stops\":").expect("stops") + 18..];
                    let stops: usize =
                        stops_tail[..stops_tail.find('}').expect("brace")].parse().expect("stops");
                    assert!(stops > last[worker], "progress must be strictly monotone");
                    assert!(stops <= instance.workers[worker].travel_tasks.len());
                    last[worker] = stops;
                    rest = stops_tail;
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_event_stream(&EventStreamSpec::preset(DatasetKind::Delivery, Scale::Small, 1));
        let b = gen_event_stream(&EventStreamSpec::preset(DatasetKind::Delivery, Scale::Small, 2));
        assert_ne!(a, b);
    }
}
