//! Dataset specifications mirroring the paper's three evaluation datasets.
//!
//! The real datasets (JD Logistics deliveries, Flickr check-ins, Cainiao
//! LaDe) are proprietary or API-gated, so this crate generates *synthetic
//! stand-ins* whose externally visible statistics match the paper's setup
//! (DESIGN.md §3.2): region extents, grid resolutions, sensing spans,
//! service times, movement speed, and right-skewed per-worker travel-task
//! counts as in Figure 4.

use serde::{Deserialize, Serialize};
use smore_geo::{GridSpec, Point};

/// Which of the paper's datasets a spec mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// JD Logistics couriers, Beijing, 2 km × 2.4 km, 10×12 grid, 4 h span.
    Delivery,
    /// Flickr tourists, Melbourne, 8 km × 8 km, 10×10 grid, 6 h span.
    Tourism,
    /// Cainiao last-mile couriers, 10×10 grid, 4 h span, many more trips.
    LaDe,
}

impl DatasetKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Delivery => "Delivery",
            DatasetKind::Tourism => "Tourism",
            DatasetKind::LaDe => "LaDe",
        }
    }

    /// All three datasets, in the paper's column order.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::Delivery, DatasetKind::Tourism, DatasetKind::LaDe]
    }
}

/// Experiment scale profile (DESIGN.md §3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Reduced dimensions so the full suite regenerates in minutes on a CPU.
    Small,
    /// The paper's dimensions (10×12 / 10×10 grids, 960+ sensing tasks).
    Paper,
}

/// Full parameterization of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which paper dataset this mimics.
    pub kind: DatasetKind,
    /// Scale profile the spec was built for.
    pub scale: Scale,
    /// Region width in meters.
    pub region_width: f64,
    /// Region height in meters.
    pub region_height: f64,
    /// Spatial grid rows.
    pub grid_rows: usize,
    /// Spatial grid columns.
    pub grid_cols: usize,
    /// Sensing-project time span in minutes.
    pub horizon: f64,
    /// Default sensing-task window length (Table I varies this).
    pub window_len: f64,
    /// Sensing duration of each task.
    pub sensing_service: f64,
    /// Service time of one travel task (10 min deliveries / 20 min POIs).
    pub travel_service: f64,
    /// Worker movement speed, meters per minute.
    pub speed: f64,
    /// Inclusive range of workers per instance.
    pub workers_per_instance: (usize, usize),
    /// Inclusive range of travel tasks per worker (right-skewed draw).
    pub travel_tasks_per_worker: (usize, usize),
    /// Number of activity hotspots travel tasks cluster around.
    pub hotspots: usize,
    /// Slack multiplier on the base route when setting `t_e^max`.
    pub time_slack: (f64, f64),
    /// Instance counts: (train, validation, test).
    pub split: (usize, usize, usize),
}

impl DatasetSpec {
    /// The Delivery-like spec.
    pub fn delivery(scale: Scale) -> Self {
        let (grid_rows, grid_cols, horizon, split, workers) = match scale {
            Scale::Paper => (12, 10, 240.0, (120, 20, 20), (8, 14)),
            Scale::Small => (6, 5, 120.0, (24, 4, 4), (4, 7)),
        };
        Self {
            kind: DatasetKind::Delivery,
            scale,
            region_width: 2000.0,
            region_height: 2400.0,
            grid_rows,
            grid_cols,
            horizon,
            window_len: 30.0,
            sensing_service: 5.0,
            travel_service: 10.0,
            speed: 60.0,
            workers_per_instance: workers,
            travel_tasks_per_worker: (3, 10),
            hotspots: 6,
            time_slack: (1.6, 2.6),
            split,
        }
    }

    /// The Tourism-like spec.
    pub fn tourism(scale: Scale) -> Self {
        let (grid_rows, grid_cols, horizon, split, workers) = match scale {
            Scale::Paper => (10, 10, 360.0, (100, 10, 10), (6, 12)),
            Scale::Small => (5, 5, 180.0, (20, 4, 4), (3, 6)),
        };
        Self {
            kind: DatasetKind::Tourism,
            scale,
            region_width: 8000.0,
            region_height: 8000.0,
            grid_rows,
            grid_cols,
            horizon,
            window_len: 30.0,
            sensing_service: 5.0,
            travel_service: 20.0,
            speed: 60.0,
            workers_per_instance: workers,
            travel_tasks_per_worker: (2, 6),
            hotspots: 8,
            time_slack: (1.5, 2.2),
            split,
        }
    }

    /// The LaDe-like spec.
    pub fn lade(scale: Scale) -> Self {
        let (grid_rows, grid_cols, horizon, split, workers) = match scale {
            // The real LaDe has 13k train instances; we keep the paper grid
            // but a tractable instance count (documented substitution).
            Scale::Paper => (10, 10, 240.0, (200, 25, 25), (10, 18)),
            Scale::Small => (5, 5, 120.0, (24, 4, 4), (5, 9)),
        };
        Self {
            kind: DatasetKind::LaDe,
            scale,
            region_width: 3000.0,
            region_height: 3000.0,
            grid_rows,
            grid_cols,
            horizon,
            window_len: 30.0,
            sensing_service: 5.0,
            travel_service: 10.0,
            speed: 60.0,
            workers_per_instance: workers,
            travel_tasks_per_worker: (3, 12),
            hotspots: 8,
            time_slack: (1.5, 2.4),
            split,
        }
    }

    /// Builds the spec for `kind` at `scale`.
    pub fn of(kind: DatasetKind, scale: Scale) -> Self {
        match kind {
            DatasetKind::Delivery => Self::delivery(scale),
            DatasetKind::Tourism => Self::tourism(scale),
            DatasetKind::LaDe => Self::lade(scale),
        }
    }

    /// The region's grid.
    pub fn grid(&self) -> GridSpec {
        GridSpec::new(
            Point::new(0.0, 0.0),
            self.region_width,
            self.region_height,
            self.grid_rows,
            self.grid_cols,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper_dimensions() {
        let d = DatasetSpec::delivery(Scale::Paper);
        assert_eq!((d.grid_rows, d.grid_cols), (12, 10));
        assert_eq!(d.horizon, 240.0);
        assert_eq!(d.split, (120, 20, 20));
        let t = DatasetSpec::tourism(Scale::Paper);
        assert_eq!((t.grid_rows, t.grid_cols), (10, 10));
        assert_eq!(t.horizon, 360.0);
        assert_eq!(t.travel_service, 20.0);
        let l = DatasetSpec::lade(Scale::Paper);
        assert_eq!((l.grid_rows, l.grid_cols), (10, 10));
    }

    #[test]
    fn small_scale_is_strictly_smaller() {
        for kind in DatasetKind::all() {
            let paper = DatasetSpec::of(kind, Scale::Paper);
            let small = DatasetSpec::of(kind, Scale::Small);
            assert!(small.grid_rows * small.grid_cols < paper.grid_rows * paper.grid_cols);
            assert!(small.split.0 < paper.split.0);
        }
    }

    #[test]
    fn speed_is_paper_default() {
        for kind in DatasetKind::all() {
            assert_eq!(DatasetSpec::of(kind, Scale::Paper).speed, 60.0);
        }
    }
}
