//! Seeded instance generation.
//!
//! * **Couriers** (Delivery, LaDe): each courier serves a contiguous
//!   neighbourhood — travel tasks are drawn from a Gaussian around one of a
//!   few depot-side hotspots, origins near the region edge (the station).
//! * **Tourists** (Tourism): travel tasks are sampled from a popularity-
//!   weighted set of attraction hotspots; origins/destinations are hotels
//!   near the region boundary.
//!
//! Per-worker travel-task counts are drawn right-skewed (squared-uniform)
//! to match the long-tailed distributions of Figure 4, and each worker's
//! `t_e^max` is set from their actual TSP base route times a slack factor,
//! so every generated worker is feasible by construction.

use crate::spec::{DatasetKind, DatasetSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smore_geo::{Point, TravelTimeModel};
use smore_model::{tsp, Instance, SensingLattice, TravelTask, Worker};

/// Length of the nearest-neighbour path `start → stops… → end` (the
/// initialization rule baselines use; see `DatasetSpec::time_slack`).
fn nn_route_length(start: &Point, end: &Point, stops: &[Point]) -> f64 {
    let mut used = vec![false; stops.len()];
    let mut at = *start;
    let mut len = 0.0;
    for _ in 0..stops.len() {
        let (next, _) = stops
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, p)| (i, at.distance_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // smore-lint: allow(E1): the loop runs exactly `stops.len()`
            // times, so an unused stop always remains.
            .expect("an unused stop must remain");
        used[next] = true;
        len += at.distance(&stops[next]);
        at = stops[next];
    }
    len + at.distance(end)
}

/// A train/validation/test split of generated instances.
#[derive(Debug, Clone)]
pub struct InstanceSplit {
    /// Training instances.
    pub train: Vec<Instance>,
    /// Validation instances.
    pub validation: Vec<Instance>,
    /// Test instances.
    pub test: Vec<Instance>,
}

/// Deterministic instance generator for a [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct InstanceGenerator {
    spec: DatasetSpec,
    hotspots: Vec<Point>,
    /// Popularity weights over hotspots (tourists prefer famous POIs).
    weights: Vec<f64>,
}

impl InstanceGenerator {
    /// Creates a generator; hotspot layout is derived from `seed`.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let hotspots = (0..spec.hotspots)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.1..0.9) * spec.region_width,
                    rng.gen_range(0.1..0.9) * spec.region_height,
                )
            })
            .collect();
        // Zipf-ish popularity: weight ∝ 1/(rank+1).
        let weights = (0..spec.hotspots).map(|i| 1.0 / (i + 1) as f64).collect();
        Self { spec, hotspots, weights }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    fn sample_hotspot(&self, rng: &mut SmallRng) -> Point {
        let total: f64 = self.weights.iter().sum();
        let mut target = rng.gen_range(0.0..total);
        for (h, &w) in self.hotspots.iter().zip(&self.weights) {
            if target < w {
                return *h;
            }
            target -= w;
        }
        // smore-lint: allow(E1): constructors reject empty hotspot lists.
        *self.hotspots.last().expect("at least one hotspot")
    }

    fn gaussian(&self, rng: &mut SmallRng, center: Point, sigma: f64) -> Point {
        // Box–Muller; clamp into the region.
        let u1: f64 = rng.gen_range(1e-9..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        Point::new(
            (center.x + r * u2.cos()).clamp(0.0, self.spec.region_width),
            (center.y + r * u2.sin()).clamp(0.0, self.spec.region_height),
        )
    }

    fn edge_point(&self, rng: &mut SmallRng) -> Point {
        // A point near the region boundary (station / hotel / metro).
        let margin_x = self.spec.region_width * 0.08;
        let margin_y = self.spec.region_height * 0.08;
        match rng.gen_range(0..4) {
            0 => {
                Point::new(rng.gen_range(0.0..self.spec.region_width), rng.gen_range(0.0..margin_y))
            }
            1 => Point::new(
                rng.gen_range(0.0..self.spec.region_width),
                rng.gen_range(self.spec.region_height - margin_y..self.spec.region_height),
            ),
            2 => Point::new(
                rng.gen_range(0.0..margin_x),
                rng.gen_range(0.0..self.spec.region_height),
            ),
            _ => Point::new(
                rng.gen_range(self.spec.region_width - margin_x..self.spec.region_width),
                rng.gen_range(0.0..self.spec.region_height),
            ),
        }
    }

    /// Right-skewed draw in `[lo, hi]`: squaring a uniform biases low counts,
    /// giving the long-tailed shapes of Figure 4.
    fn skewed_count(&self, rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        lo + ((hi - lo) as f64 * u * u).round() as usize
    }

    fn gen_worker(&self, rng: &mut SmallRng) -> Worker {
        let spec = &self.spec;
        let (lo, hi) = spec.travel_tasks_per_worker;
        let n_tasks = self.skewed_count(rng, lo, hi);
        let sigma = spec.region_width.min(spec.region_height) * 0.12;

        let (origin, destination, tasks) = match spec.kind {
            DatasetKind::Delivery | DatasetKind::LaDe => {
                // Courier: departs the station, serves one neighbourhood,
                // returns to the station.
                let station = self.edge_point(rng);
                let zone = self.sample_hotspot(rng);
                let tasks: Vec<TravelTask> = (0..n_tasks)
                    .map(|_| TravelTask::new(self.gaussian(rng, zone, sigma), spec.travel_service))
                    .collect();
                (station, station, tasks)
            }
            DatasetKind::Tourism => {
                // Tourist: hotel to hotel via popularity-weighted POIs.
                let hotel = self.edge_point(rng);
                let out = self.edge_point(rng);
                let tasks: Vec<TravelTask> = (0..n_tasks)
                    .map(|_| {
                        let poi = self.sample_hotspot(rng);
                        TravelTask::new(self.gaussian(rng, poi, sigma * 0.4), spec.travel_service)
                    })
                    .collect();
                (hotel, out, tasks)
            }
        };

        // Time range: departure in the first third of the horizon, latest
        // arrival from the actual base route time plus slack. The floor uses
        // the *nearest-neighbour* route time (not just the TSP optimum) so
        // baselines that initialize with the NN rule stay feasible too.
        let travel = TravelTimeModel::new(spec.speed);
        let stops: Vec<Point> = tasks.iter().map(|t| t.loc).collect();
        let (_, base_dist) = tsp::solve_open_tsp(&origin, &destination, &stops);
        let service: f64 = tasks.iter().map(|t| t.service).sum();
        let base_time = base_dist / travel.speed + service;
        let nn_time = nn_route_length(&origin, &destination, &stops) / travel.speed + service;
        let slack = rng.gen_range(spec.time_slack.0..spec.time_slack.1);
        let depart = rng.gen_range(0.0..(spec.horizon / 3.0).max(1.0));
        // The worker's own trip may extend past the sensing horizon (sensing
        // windows bound what can be *sensed*, not when the trip ends); the
        // floor guarantees baselines starting from NN routes stay feasible.
        let latest = (depart + base_time * slack).max(depart + nn_time * 1.05 + 1.0);
        Worker::new(origin, destination, depart, latest, tasks)
    }

    /// Generates one instance with the given sensing window length, budget,
    /// incentive rate, and coverage weight `alpha`.
    pub fn gen_instance(
        &self,
        rng: &mut SmallRng,
        window_len: f64,
        budget: f64,
        mu: f64,
        alpha: f64,
    ) -> Instance {
        let spec = &self.spec;
        let (lo, hi) = spec.workers_per_instance;
        let n_workers = rng.gen_range(lo..=hi);
        let workers = (0..n_workers).map(|_| self.gen_worker(rng)).collect();
        let lattice = SensingLattice {
            grid: spec.grid(),
            horizon: spec.horizon,
            window_len,
            service: spec.sensing_service,
        };
        Instance::from_lattice(
            workers,
            lattice,
            budget,
            mu,
            TravelTimeModel::new(spec.speed),
            alpha,
        )
    }

    /// Generates one instance with the paper's default knobs
    /// (window 30 min unless the spec overrides, budget 300, `μ = 1`,
    /// `α = 0.5`).
    pub fn gen_default(&self, rng: &mut SmallRng) -> Instance {
        self.gen_instance(rng, self.spec.window_len, 300.0, 1.0, 0.5)
    }

    /// Generates the full train/validation/test split deterministically.
    pub fn gen_split(&self, seed: u64) -> InstanceSplit {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n_train, n_val, n_test) = self.spec.split;
        let mut draw = |n: usize| (0..n).map(|_| self.gen_default(&mut rng)).collect();
        InstanceSplit { train: draw(n_train), validation: draw(n_val), test: draw(n_test) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;
    use smore_model::{evaluate, Route, Solution, Stop};

    fn generator(kind: DatasetKind) -> InstanceGenerator {
        InstanceGenerator::new(DatasetSpec::of(kind, Scale::Small), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in DatasetKind::all() {
            let g = generator(kind);
            let mut r1 = SmallRng::seed_from_u64(1);
            let mut r2 = SmallRng::seed_from_u64(1);
            let a = g.gen_default(&mut r1);
            let b = g.gen_default(&mut r2);
            assert_eq!(a.n_workers(), b.n_workers());
            assert_eq!(a.base_rtt, b.base_rtt);
        }
    }

    #[test]
    fn every_generated_worker_is_feasible() {
        for kind in DatasetKind::all() {
            let g = generator(kind);
            let mut rng = SmallRng::seed_from_u64(2);
            for _ in 0..5 {
                let inst = g.gen_default(&mut rng);
                // TSP-order mandatory routes must validate for all workers.
                let routes = inst
                    .workers
                    .iter()
                    .map(|w| {
                        let stops: Vec<Point> = w.travel_tasks.iter().map(|t| t.loc).collect();
                        let (order, _) = tsp::solve_open_tsp(&w.origin, &w.destination, &stops);
                        Route::new(order.into_iter().map(Stop::Travel).collect())
                    })
                    .collect();
                let stats = evaluate(&inst, &Solution { routes }).unwrap();
                assert_eq!(stats.completed, 0);
            }
        }
    }

    #[test]
    fn tourists_end_elsewhere_couriers_return() {
        let mut rng = SmallRng::seed_from_u64(3);
        let delivery = generator(DatasetKind::Delivery).gen_default(&mut rng);
        for w in &delivery.workers {
            assert_eq!(w.origin, w.destination, "couriers return to the station");
        }
    }

    #[test]
    fn split_sizes_match_spec() {
        let g = generator(DatasetKind::Tourism);
        let split = g.gen_split(11);
        let (tr, va, te) = g.spec().split;
        assert_eq!(split.train.len(), tr);
        assert_eq!(split.validation.len(), va);
        assert_eq!(split.test.len(), te);
    }

    #[test]
    fn travel_task_counts_respect_bounds() {
        for kind in DatasetKind::all() {
            let g = generator(kind);
            let (lo, hi) = g.spec().travel_tasks_per_worker;
            let mut rng = SmallRng::seed_from_u64(4);
            for _ in 0..3 {
                let inst = g.gen_default(&mut rng);
                for w in &inst.workers {
                    assert!((lo..=hi).contains(&w.travel_tasks.len()));
                }
            }
        }
    }

    #[test]
    fn all_locations_inside_region() {
        for kind in DatasetKind::all() {
            let g = generator(kind);
            let grid = g.spec().grid();
            let mut rng = SmallRng::seed_from_u64(5);
            let inst = g.gen_default(&mut rng);
            for w in &inst.workers {
                assert!(grid.contains(&w.origin) && grid.contains(&w.destination));
                for t in &w.travel_tasks {
                    assert!(grid.contains(&t.loc));
                }
            }
        }
    }
}
