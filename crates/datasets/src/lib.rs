//! Seeded synthetic dataset generators standing in for the SMORE paper's
//! three evaluation datasets (Delivery / Tourism / LaDe).
//!
//! The real datasets are proprietary (JD Logistics, Cainiao) or API-gated
//! (Flickr). Per the substitution policy in `DESIGN.md` §3.2, this crate
//! generates instances whose externally visible statistics match the
//! paper's setup: region extents and grids, sensing spans, service times,
//! movement speed, worker-count ranges, and the right-skewed travel-task
//! distributions of Figure 4.
//!
//! * [`DatasetSpec`] / [`DatasetKind`] / [`Scale`] — parameterizations.
//! * [`InstanceGenerator`] / [`InstanceSplit`] — deterministic generation.
//! * [`DatasetStats`] / [`Histogram`] — the statistics behind Figure 4.
//! * [`EventStreamSpec`] / [`gen_event_stream`] — seeded arrival-stream
//!   (JSONL) generation for the online `/v1/events` subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod gen;
mod spec;
mod stats;

pub use events::{gen_event_stream, EventStreamSpec};
pub use gen::{InstanceGenerator, InstanceSplit};
pub use spec::{DatasetKind, DatasetSpec, Scale};
pub use stats::{DatasetStats, Histogram};
