//! Property-based tests for the synthetic dataset generators.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated instance is internally consistent: workers inside the
    /// region, feasible time ranges, tasks covering the full lattice.
    #[test]
    fn instances_are_well_formed(
        seed in 0u64..10_000,
        kind in prop::sample::select(vec![DatasetKind::Delivery, DatasetKind::Tourism, DatasetKind::LaDe]),
        budget in 50.0f64..500.0,
        window in prop::sample::select(vec![30.0f64, 60.0]),
    ) {
        let spec = DatasetSpec::of(kind, Scale::Small);
        let generator = InstanceGenerator::new(spec.clone(), seed);
        let inst = generator.gen_instance(&mut SmallRng::seed_from_u64(seed), window, budget, 1.0, 0.5);

        prop_assert_eq!(inst.budget, budget);
        let slots = ((spec.horizon / window).floor() as usize).max(1);
        prop_assert_eq!(inst.n_tasks(), spec.grid_rows * spec.grid_cols * slots);

        let grid = spec.grid();
        for (w, worker) in inst.workers.iter().enumerate() {
            prop_assert!(grid.contains(&worker.origin));
            prop_assert!(grid.contains(&worker.destination));
            prop_assert!(worker.earliest_departure < worker.latest_arrival);
            // The reference route must fit in the worker's time range.
            prop_assert!(
                inst.base_rtt[w] <= worker.time_budget() + 1e-6,
                "worker {w}: base rtt {} exceeds time budget {}",
                inst.base_rtt[w],
                worker.time_budget()
            );
        }
    }

    /// Same seed ⇒ identical instances; different seeds ⇒ different layouts.
    #[test]
    fn seeding_controls_generation(seed in 0u64..10_000) {
        let spec = DatasetSpec::of(DatasetKind::Delivery, Scale::Small);
        let g1 = InstanceGenerator::new(spec.clone(), seed);
        let g2 = InstanceGenerator::new(spec, seed);
        let a = g1.gen_default(&mut SmallRng::seed_from_u64(5));
        let b = g2.gen_default(&mut SmallRng::seed_from_u64(5));
        prop_assert_eq!(a.base_rtt, b.base_rtt);
        prop_assert_eq!(a.workers.len(), b.workers.len());
    }
}
