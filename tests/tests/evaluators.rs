//! Evaluator-parity integration tests: the incremental candidate evaluator
//! must match the full-resolve reference on solution quality (no φ
//! regression from the fast path) while paying a fraction of the TSPTW
//! solve invocations.

use rand::{rngs::SmallRng, SeedableRng};
use smore::{
    CandidateEvaluator, Engine, FullResolve, GreedySelection, IncrementalInsertion,
    SelectionPolicy, SmoreFramework,
};
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
use smore_model::{evaluate, Deadline, Instance, UsmdwSolver};
use smore_tsptw::InsertionSolver;
use std::sync::Arc;

fn instances(kind: DatasetKind, n: usize) -> Vec<Instance> {
    let g = InstanceGenerator::new(DatasetSpec::of(kind, Scale::Small), 7);
    let mut rng = SmallRng::seed_from_u64(7);
    (0..n).map(|_| g.gen_default(&mut rng)).collect()
}

/// Engine init + greedy selection to exhaustion under a given evaluator.
fn greedy_objective(inst: &Instance, evaluator: Arc<dyn CandidateEvaluator>) -> f64 {
    let solver = InsertionSolver::new();
    let mut engine = Engine::new_with(inst, &solver, evaluator, Deadline::none()).unwrap();
    let mut policy = GreedySelection;
    while engine.has_candidates() {
        let Some((w, t)) = policy.select(&engine) else { break };
        if engine.apply(w, t).is_err() {
            break;
        }
    }
    let sol = engine.state.into_solution();
    let stats = evaluate(inst, &sol).expect("engine solutions validate");
    assert!(stats.total_incentive <= inst.budget + 1e-6);
    stats.objective
}

#[test]
fn incremental_objective_within_noise_of_full_resolve() {
    for kind in DatasetKind::all() {
        let mut full_sum = 0.0;
        let mut inc_sum = 0.0;
        for inst in &instances(kind, 3) {
            full_sum += greedy_objective(inst, Arc::new(FullResolve::new()));
            inc_sum += greedy_objective(inst, Arc::new(IncrementalInsertion::new()));
        }
        assert!(full_sum > 0.0, "{kind:?}: reference runs must cover something");
        let rel = (inc_sum - full_sum).abs() / full_sum;
        assert!(
            rel <= 0.10,
            "{kind:?}: objective drift {rel:.3} (incremental {inc_sum:.4} vs full {full_sum:.4})"
        );
    }
}

#[test]
fn framework_accepts_evaluator_override() {
    let inst = &instances(DatasetKind::Tourism, 1)[0];
    let mut fw = SmoreFramework::new(GreedySelection, InsertionSolver::new())
        .with_evaluator(Arc::new(FullResolve::new()));
    let sol = fw.solve(inst);
    let stats = evaluate(inst, &sol).unwrap();
    assert!(stats.completed > 0);
    assert!(stats.total_incentive <= inst.budget + 1e-6);
}

#[test]
fn incremental_cuts_tsptw_solves_at_least_3x_on_delivery() {
    let full_eval = Arc::new(FullResolve::new());
    let inc_eval = Arc::new(IncrementalInsertion::new());
    for inst in &instances(DatasetKind::Delivery, 3) {
        greedy_objective(inst, full_eval.clone());
        greedy_objective(inst, inc_eval.clone());
    }
    let f = full_eval.stats();
    let i = inc_eval.stats();
    // Trajectories can diverge slightly, but the probe volume must be in
    // the same ballpark for the solve-count comparison to be meaningful.
    assert!(f.evaluations > 0 && i.evaluations > 0);
    assert!(
        f.full_solves >= 3 * i.full_solves.max(1),
        "expected >= 3x fewer TSPTW solves: full {} vs incremental {}",
        f.full_solves,
        i.full_solves
    );
}
