//! Chaos suite: every solver in the workspace must stay correct when its
//! TSPTW core misbehaves and when wall-clock budgets expire mid-solve.
//!
//! The contract under test (the resilience invariants):
//! 1. no solver panics, at any fault rate or deadline;
//! 2. every emitted solution passes the independent referee
//!    [`smore_model::evaluate`] — faults and timeouts degrade coverage,
//!    never validity;
//! 3. a deadline-bounded solve returns promptly after expiry.

mod common;

use common::tiny_instances;
use smore::{GreedySelection, RandomSelection, SmoreFramework};
use smore_baselines::{GreedySolver, JdrlPolicy, JdrlSolver, MsaConfig, MsaSolver, RandomSolver};
use smore_model::{evaluate, Deadline, Instance, UsmdwSolver};
use smore_tsptw::{
    FallbackSolver, FaultConfig, FaultInjectingSolver, InsertionSolver, VerifyingSolver,
};
use std::time::{Duration, Instant};

/// SMORE (the framework, greedy selection) with a chaos-wrapped TSPTW core:
/// faults injected at `rate`, every claim independently verified.
fn chaotic_smore(rate: f64, seed: u64) -> impl UsmdwSolver {
    SmoreFramework::new(
        GreedySelection,
        VerifyingSolver::new(FaultInjectingSolver::new(
            InsertionSolver::new(),
            FaultConfig::uniform(rate),
            seed,
        )),
    )
}

/// The six paper baselines, fresh instances each call.
fn baselines(seed: u64) -> Vec<Box<dyn UsmdwSolver>> {
    vec![
        Box::new(RandomSolver::new(seed)),
        Box::new(GreedySolver::tvpg()),
        Box::new(GreedySolver::tcpg()),
        Box::new(MsaSolver::msa(MsaConfig::small(), seed)),
        Box::new(MsaSolver::msagi(MsaConfig::small(), seed)),
        Box::new(JdrlSolver::new(JdrlPolicy::new(seed))),
    ]
}

fn assert_valid(instance: &Instance, solver: &mut dyn UsmdwSolver, deadline: Deadline) {
    let sol = solver.solve_within(instance, deadline);
    let stats = evaluate(instance, &sol)
        .unwrap_or_else(|e| panic!("{} emitted an invalid solution: {e}", solver.name()));
    assert!(
        stats.total_incentive <= instance.budget + 1e-6,
        "{} blew the incentive budget",
        solver.name()
    );
}

#[test]
fn generated_instances_pass_structural_validation() {
    // `Instance::validate` gates every deserialization (and `inspect
    // --validate` in the CLI); the generator must never trip it.
    for inst in tiny_instances(30, 4) {
        inst.validate().expect("generated instance must validate");
    }
}

#[test]
fn smore_survives_the_fault_grid() {
    let instances = tiny_instances(31, 2);
    for &rate in &[0.0, 0.2, 1.0] {
        for (i, inst) in instances.iter().enumerate() {
            let mut smore = chaotic_smore(rate, 1000 + i as u64);
            assert_valid(inst, &mut smore, Deadline::none());
        }
    }
}

#[test]
fn all_baselines_survive_deadlines_from_zero_to_unbounded() {
    let instances = tiny_instances(32, 1);
    let inst = &instances[0];
    for deadline in [Deadline::after_millis(0), Deadline::after_millis(20), Deadline::none()] {
        for mut solver in baselines(7) {
            assert_valid(inst, solver.as_mut(), deadline);
        }
        let mut random_select = SmoreFramework::new(
            RandomSelection::new(5),
            VerifyingSolver::new(FaultInjectingSolver::new(
                InsertionSolver::new(),
                FaultConfig::uniform(0.2),
                5,
            )),
        );
        assert_valid(inst, &mut random_select, deadline);
    }
}

#[test]
fn total_fault_rate_degrades_to_the_reference_routes() {
    let instances = tiny_instances(33, 1);
    let inst = &instances[0];
    // At 100% faults every TSPTW call fails, so SMORE cannot even plan the
    // mandatory routes and must fall back to the exact reference solution:
    // still valid, zero incentive spent.
    let mut smore = chaotic_smore(1.0, 77);
    let sol = smore.solve(inst);
    let stats = evaluate(inst, &sol).expect("fallback must validate");
    assert_eq!(stats.completed, 0, "no sensing task can survive total faults");
    assert!(stats.total_incentive.abs() < 1e-9);
}

#[test]
fn fallback_chain_rescues_a_chaotic_primary() {
    let instances = tiny_instances(34, 1);
    let inst = &instances[0];
    // Chain: fault-injecting primary (fails half the time) → honest
    // insertion. The chain as a whole behaves like an honest solver, so
    // SMORE on top of it should complete tasks despite the chaos.
    let chain = FallbackSolver::new()
        .push(VerifyingSolver::new(FaultInjectingSolver::new(
            InsertionSolver::new(),
            FaultConfig::uniform(0.5),
            41,
        )))
        .push(InsertionSolver::new());
    let mut smore = SmoreFramework::new(GreedySelection, chain);
    let sol = smore.solve(inst);
    let stats = evaluate(inst, &sol).expect("rescued solution must validate");
    let honest =
        evaluate(inst, &SmoreFramework::new(GreedySelection, InsertionSolver::new()).solve(inst))
            .unwrap();
    assert!(
        stats.completed > 0 || honest.completed == 0,
        "a rescued chain should still complete tasks when the honest solver can"
    );
}

#[test]
fn deadline_bounded_solves_return_promptly() {
    let instances = tiny_instances(35, 1);
    let inst = &instances[0];
    let budget = Duration::from_millis(50);
    // Generous slack: expiry is only checked between atomic steps (one
    // insertion attempt, one anneal move), so a solver may overshoot by one
    // step — bounded, but not zero — plus debug-build noise.
    let slack = Duration::from_millis(2000);
    for mut solver in baselines(9) {
        let start = Instant::now();
        assert_valid(inst, solver.as_mut(), Deadline::after(budget));
        let elapsed = start.elapsed();
        assert!(
            elapsed < budget + slack,
            "{} ran {elapsed:?} against a {budget:?} budget",
            solver.name()
        );
    }
    let start = Instant::now();
    let mut smore = chaotic_smore(0.2, 55);
    assert_valid(inst, &mut smore, Deadline::after(budget));
    assert!(start.elapsed() < budget + slack, "SMORE overran its budget");
}

mod chaos_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The headline invariant: at ANY fault rate in [0, 1], with any
        /// seed, SMORE and every baseline terminate without panicking and
        /// emit a solution the independent referee accepts.
        #[test]
        fn any_fault_rate_yields_only_valid_solutions(
            rate in 0.0f64..=1.0,
            seed in 0u64..1000,
        ) {
            let instances = tiny_instances(seed.wrapping_add(100), 1);
            let inst = &instances[0];
            let mut smore = chaotic_smore(rate, seed);
            assert_valid(inst, &mut smore, Deadline::none());
            for mut solver in baselines(seed) {
                assert_valid(inst, solver.as_mut(), Deadline::after_millis(seed % 30));
            }
        }
    }
}
