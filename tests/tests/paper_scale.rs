//! Paper-scale smoke tests (`Scale::Paper`: 960 sensing tasks on Delivery).
//! Ignored by default — run with `cargo test -p smore-integration --release -- --ignored`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore::{Engine, GreedySelection, SelectionPolicy};
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
use smore_model::evaluate;
use smore_tsptw::InsertionSolver;

#[test]
#[ignore = "paper-scale: ~a minute in release, very slow in debug"]
fn paper_scale_delivery_pipeline() {
    let spec = DatasetSpec::of(DatasetKind::Delivery, Scale::Paper);
    let generator = InstanceGenerator::new(spec, 1);
    let inst = generator.gen_default(&mut SmallRng::seed_from_u64(1));
    assert_eq!(inst.n_tasks(), 12 * 10 * 8, "960 sensing tasks at paper scale");
    assert!(inst.n_workers() >= 8);

    // Candidate initialization over all |W|·|S| pairs, then a bounded number
    // of greedy selections — the full Algorithm 1 machinery at paper scale.
    let solver = InsertionSolver::new();
    let mut engine = Engine::new(&inst, &solver).expect("initial routes exist");
    assert!(engine.has_candidates());
    let mut policy = GreedySelection;
    for _ in 0..10 {
        let Some((w, t)) = policy.select(&engine) else { break };
        engine.apply(w, t).unwrap();
    }
    let completed = engine.state.coverage.len();
    assert!(completed > 0);
    let stats = evaluate(&inst, &engine.state.into_solution()).unwrap();
    assert_eq!(stats.completed, completed);
}
