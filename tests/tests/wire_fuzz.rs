//! Wire-format hardening: arbitrary, truncated, and mutated JSON aimed at
//! [`Instance`] and the serving DTOs must never panic — every malformed
//! payload surfaces as a typed `Err`, and anything that does deserialize
//! upholds the type's invariants.
//!
//! The same property is checked one layer up: raw garbage bytes thrown at a
//! live `smore-serve` listener always produce a framed HTTP error response
//! (or a clean close), never a hang or a crash.

mod common;

use common::tiny_instances;
use proptest::prelude::*;
use smore_model::{FeasibleRequest, GenerateSpec, Instance, ModelCheckpoint, SolveRequest};

/// The stub `serde_json` used in offline builds rejects every document, so
/// round-trip-based cases are vacuous there (they still must not panic).
fn serde_is_functional() -> bool {
    serde_json::from_str::<u64>("1").is_ok()
}

/// Byte soup skewed towards JSON punctuation so the parser gets past the
/// first token often enough to exercise deep paths.
fn arb_payload() -> impl Strategy<Value = String> {
    prop::collection::vec((0u32..16, 0u8..=255), 0..300).prop_map(|spans| {
        let mut s = String::new();
        for (kind, byte) in spans {
            match kind {
                0 => s.push('{'),
                1 => s.push('}'),
                2 => s.push('['),
                3 => s.push(']'),
                4 => s.push('"'),
                5 => s.push(':'),
                6 => s.push(','),
                7 => s.push_str("workers"),
                8 => s.push_str("lattice"),
                9 => s.push_str("dataset"),
                10 => s.push_str("null"),
                11 => s.push_str("1e999"),
                12 => s.push_str("-0.5"),
                _ => s.push(byte as char),
            }
        }
        s
    })
}

/// Every deserialization target the server accepts over the wire. None may
/// panic on any input; failure is always a typed `serde_json::Error`.
fn parse_all(payload: &str) {
    let _ = serde_json::from_str::<Instance>(payload).map_err(|e| e.to_string());
    let _ = serde_json::from_str::<SolveRequest>(payload).map_err(|e| e.to_string());
    let _ = serde_json::from_str::<FeasibleRequest>(payload).map_err(|e| e.to_string());
    let _ = serde_json::from_str::<GenerateSpec>(payload).map_err(|e| e.to_string());
    let _ = serde_json::from_str::<ModelCheckpoint>(payload).map_err(|e| e.to_string());
}

proptest! {
    #[test]
    fn arbitrary_payloads_never_panic(payload in arb_payload()) {
        parse_all(&payload);
    }

    #[test]
    fn truncated_instance_json_never_panics(cut in 0.0f64..1.0, which in 0usize..3) {
        let inst = &tiny_instances(3, 3)[which];
        let json = serde_json::to_string(inst).unwrap_or_default();
        let at = (json.len() as f64 * cut) as usize;
        // Cut on a char boundary; JSON here is ASCII but stay defensive.
        let at = (0..=at).rev().find(|i| json.is_char_boundary(*i)).unwrap_or(0);
        let clipped = &json[..at];
        parse_all(clipped);
        if serde_is_functional() && at < json.len() {
            prop_assert!(
                serde_json::from_str::<Instance>(clipped).is_err(),
                "a strict prefix must not parse as a full instance"
            );
        }
    }

    #[test]
    fn mutated_instance_json_never_panics(pos in 0.0f64..1.0, replacement in 0u8..=127) {
        let inst = &tiny_instances(3, 1)[0];
        let mut json = serde_json::to_string(inst).unwrap_or_default().into_bytes();
        if json.is_empty() {
            return Ok(()); // stub serde: nothing to mutate, property is vacuous
        }
        let at = ((json.len() - 1) as f64 * pos) as usize;
        json[at] = replacement;
        let payload = String::from_utf8_lossy(&json).into_owned();
        parse_all(&payload);
        // If the mutation still parses, the result must be a coherent
        // instance: the deserializer's validation hook may not be bypassed.
        if let Ok(back) = serde_json::from_str::<Instance>(&payload) {
            prop_assert_eq!(back.base_rtt.len(), back.n_workers());
        }
    }
}

/// Raw garbage at the TCP layer: the server must answer every byte string
/// with a framed HTTP response (or close cleanly), and stay alive for a
/// well-formed request afterwards.
#[test]
fn garbage_bytes_on_the_wire_get_framed_errors_and_the_server_survives() {
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;

    let handle = smore_serve::start(
        smore_serve::ServeConfig { threads: 1, ..smore_serve::ServeConfig::default() },
        Arc::new(smore_serve::ModelRegistry::new()),
    )
    .expect("bind fuzz server");
    let addr = handle.addr().to_string();

    let payloads: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"\r\n\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"POST /v1/solve HTTP/1.1\r\nContent-Length: notanumber\r\n\r\n".to_vec(),
        b"POST /v1/solve HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n".to_vec(),
        b"POST /v1/solve HTTP/1.1\r\nContent-Length: 10\r\n\r\n{".to_vec(),
        b"\x00\xff\xfe{\"workers\":".to_vec(),
        vec![b'A'; 64 * 1024],
        b"POST /v1/solve?dataset=delivery&gen_seed=bogus HTTP/1.1\r\n\r\n".to_vec(),
        b"PATCH /healthz HTTP/1.1\r\n\r\n".to_vec(),
    ];
    for payload in &payloads {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let _ = stream.write_all(payload);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        if !reply.is_empty() {
            let head = String::from_utf8_lossy(&reply);
            assert!(head.starts_with("HTTP/1.1 "), "unframed reply to {payload:?}: {head}");
        }
    }

    // Still healthy after all that.
    let mut stream = std::net::TcpStream::connect(&addr).expect("reconnect");
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");

    handle.stop();
    handle.join();
}
