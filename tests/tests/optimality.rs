//! Optimality-gap measurement against the exhaustive oracle on tiny
//! instances — the strongest quality check available (no paper counterpart;
//! the paper's instances are too large to solve exactly).

use smore::{GreedySelection, SmoreFramework};
use smore_baselines::{ExactUsmdwSolver, GreedySolver};
use smore_geo::{GridSpec, Point, TravelTimeModel};
use smore_model::{evaluate, Instance, SensingLattice, TravelTask, UsmdwSolver, Worker};
use smore_tsptw::InsertionSolver;

fn tiny(seed: u64) -> Instance {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let lattice = SensingLattice {
        grid: GridSpec::new(Point::new(0.0, 0.0), 800.0, 800.0, 2, 2),
        horizon: 120.0,
        window_len: 60.0,
        service: 4.0,
    };
    let workers = (0..2)
        .map(|_| {
            let origin = Point::new(rng.gen_range(0.0..800.0), rng.gen_range(0.0..800.0));
            let dest = Point::new(rng.gen_range(0.0..800.0), rng.gen_range(0.0..800.0));
            let tasks = (0..rng.gen_range(1..=2))
                .map(|_| {
                    TravelTask::new(
                        Point::new(rng.gen_range(0.0..800.0), rng.gen_range(0.0..800.0)),
                        8.0,
                    )
                })
                .collect();
            Worker::new(origin, dest, 0.0, rng.gen_range(70.0..110.0), tasks)
        })
        .collect();
    Instance::from_lattice(workers, lattice, 60.0, 1.0, TravelTimeModel::PAPER_DEFAULT, 0.5)
}

#[test]
fn framework_greedy_is_near_optimal_on_tiny_instances() {
    let mut oracle = ExactUsmdwSolver::new();
    let mut framework = SmoreFramework::new(GreedySelection, InsertionSolver::new());
    let mut tvpg = GreedySolver::tvpg();

    let (mut opt_sum, mut fw_sum, mut tvpg_sum) = (0.0, 0.0, 0.0);
    for seed in 0..6 {
        let inst = tiny(seed);
        let opt = evaluate(&inst, &oracle.solve(&inst)).unwrap().objective;
        let fw = evaluate(&inst, &framework.solve(&inst)).unwrap().objective;
        let tv = evaluate(&inst, &tvpg.solve(&inst)).unwrap().objective;
        assert!(fw <= opt + 1e-9, "seed {seed}: framework {fw} beat the oracle {opt}");
        assert!(tv <= opt + 1e-9, "seed {seed}: TVPG {tv} beat the oracle {opt}");
        opt_sum += opt;
        fw_sum += fw;
        tvpg_sum += tv;
    }
    // The framework should capture the large majority of the attainable
    // objective, and at least as much as plain TVPG.
    assert!(
        fw_sum >= 0.85 * opt_sum,
        "framework captured only {:.1}% of optimum",
        100.0 * fw_sum / opt_sum
    );
    assert!(fw_sum + 1e-9 >= tvpg_sum);
}
