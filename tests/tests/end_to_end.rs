//! End-to-end pipeline: generate → train → solve with every method →
//! independently validate every solution.

mod common;

use common::tiny_instances;
use smore::{
    Critic, GreedySelection, SingleStageNet, SingleStageSolver, SmoreFramework, SmoreSolver,
    Tasnet, TasnetConfig, TasnetTrainConfig,
};
use smore_baselines::{GreedySolver, JdrlPolicy, JdrlSolver, MsaConfig, MsaSolver, RandomSolver};
use smore_model::{evaluate, UsmdwSolver};
use smore_tsptw::InsertionSolver;
use std::time::Duration;

fn tiny_tasnet(grid_rows: usize, grid_cols: usize) -> (Tasnet, Critic) {
    let mut cfg = TasnetConfig::for_grid(grid_rows, grid_cols);
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.enc_layers = 1;
    (Tasnet::new(cfg, 3), Critic::new(16, 4))
}

#[test]
fn every_method_produces_valid_solutions() {
    let instances = tiny_instances(7, 3);
    let (mut net, mut critic) = tiny_tasnet(4, 4);
    let cfg = TasnetTrainConfig {
        warmup_epochs: 1,
        epochs: 0,
        batch: 2,
        lr: 1e-3,
        rl_lr: 2e-4,
        critic_lr: 1e-3,
        threads: 2,
        micro_batch: 2,
    };
    smore::train_tasnet(&mut net, &mut critic, &instances[..2], &InsertionSolver::new(), &cfg, 5);

    let msa_cfg = MsaConfig {
        starts: 1,
        iters_per_round: 150,
        max_stale_rounds: 2,
        time_cap: Duration::from_secs(30),
        ..MsaConfig::default()
    };
    let mut methods: Vec<Box<dyn UsmdwSolver>> = vec![
        Box::new(RandomSolver::new(1)),
        Box::new(GreedySolver::tvpg()),
        Box::new(GreedySolver::tcpg()),
        Box::new(MsaSolver::msa(msa_cfg.clone(), 2)),
        Box::new(MsaSolver::msagi(msa_cfg, 2)),
        Box::new(JdrlSolver::new(JdrlPolicy::new(3))),
        Box::new(SmoreFramework::new(GreedySelection, InsertionSolver::new())),
        Box::new(SingleStageSolver::new(SingleStageNet::new(4), InsertionSolver::new())),
        Box::new(SmoreSolver::new(net, critic, InsertionSolver::new())),
    ];

    let inst = &instances[2];
    for method in &mut methods {
        let sol = method.solve(inst);
        let stats = evaluate(inst, &sol)
            .unwrap_or_else(|e| panic!("{} produced an invalid solution: {e}", method.name()));
        assert!(
            stats.total_incentive <= inst.budget + 1e-6,
            "{} exceeded the budget",
            method.name()
        );
    }
}

#[test]
fn warm_started_smore_at_least_matches_random_baseline() {
    let instances = tiny_instances(11, 4);
    let (mut net, mut critic) = tiny_tasnet(4, 4);
    let cfg = TasnetTrainConfig {
        warmup_epochs: 2,
        epochs: 1,
        batch: 2,
        lr: 1e-3,
        rl_lr: 2e-4,
        critic_lr: 1e-3,
        threads: 2,
        micro_batch: 2,
    };
    smore::train_tasnet(&mut net, &mut critic, &instances[..3], &InsertionSolver::new(), &cfg, 5);
    let mut smore = SmoreSolver::new(net, critic, InsertionSolver::new());
    let mut rn = RandomSolver::new(9);

    let inst = &instances[3];
    let smore_obj = evaluate(inst, &smore.solve(inst)).unwrap().objective;
    let rn_obj = evaluate(inst, &rn.solve(inst)).unwrap().objective;
    assert!(
        smore_obj >= rn_obj - 0.15,
        "trained SMORE ({smore_obj:.3}) far below RN ({rn_obj:.3})"
    );
}

#[test]
fn framework_greedy_beats_insertion_greedy() {
    // The framework re-plans routes with the TSPTW solver; plain TVPG only
    // inserts into a fixed NN route. Over several instances the framework
    // must come out ahead — this is the structural half of SMORE's edge.
    let instances = tiny_instances(13, 5);
    let mut framework = SmoreFramework::new(GreedySelection, InsertionSolver::new());
    let mut tvpg = GreedySolver::tvpg();
    let mut fw_sum = 0.0;
    let mut tv_sum = 0.0;
    for inst in &instances {
        fw_sum += evaluate(inst, &framework.solve(inst)).unwrap().objective;
        tv_sum += evaluate(inst, &tvpg.solve(inst)).unwrap().objective;
    }
    assert!(fw_sum > tv_sum, "framework {fw_sum:.3} <= TVPG {tv_sum:.3}");
}
