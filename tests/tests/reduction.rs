//! The NP-hardness reduction, exercised end-to-end: an Orienteering Problem
//! instance is translated to USMDW (Lemma 1) and solved by the SMORE
//! framework; the number of visited vertices is compared with brute force.

use smore::{GreedySelection, SmoreFramework};
use smore_geo::Point;
use smore_model::reduction::{op_to_usmdw, OpInstance};
use smore_model::{evaluate, UsmdwSolver};
use smore_tsptw::InsertionSolver;

fn op() -> OpInstance {
    OpInstance {
        start: Point::new(0.0, 0.0),
        end: Point::new(100.0, 0.0),
        vertices: vec![
            Point::new(20.0, 5.0),
            Point::new(40.0, -10.0),
            Point::new(60.0, 8.0),
            Point::new(80.0, -5.0),
            Point::new(50.0, 80.0), // expensive detour
            Point::new(10.0, 60.0), // expensive detour
        ],
        t_max: 160.0,
        speed: 1.0,
    }
}

/// Maximum number of vertices visitable within `t_max` (brute force).
fn op_optimum(op: &OpInstance) -> usize {
    let n = op.vertices.len();
    let mut best = 0;
    for mask in 0..(1u32 << n) {
        let subset: Vec<Point> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| op.vertices[i]).collect();
        if subset.len() <= best {
            continue;
        }
        let (_, len) = smore_model::tsp::solve_open_tsp(&op.start, &op.end, &subset);
        if len / op.speed <= op.t_max + 1e-9 {
            best = subset.len();
        }
    }
    best
}

#[test]
fn usmdw_solver_approaches_op_optimum() {
    let op = op();
    let optimum = op_optimum(&op);
    assert!(optimum >= 4, "test OP should admit at least the 4 on-path vertices");

    let inst = op_to_usmdw(&op);
    let mut solver = SmoreFramework::new(GreedySelection, InsertionSolver::new());
    let sol = solver.solve(&inst);
    let stats = evaluate(&inst, &sol).unwrap();

    // Any USMDW solution's visit count is a valid OP score; it can never
    // exceed the optimum, and the framework should find a good one.
    assert!(stats.completed <= optimum);
    assert!(
        stats.completed + 1 >= optimum,
        "framework found {} visits; OP optimum is {optimum}",
        stats.completed
    );
    // With α = 0 the objective is exactly log2(#visits).
    assert!((stats.objective - (stats.completed as f64).log2()).abs() < 1e-9);
}
