//! Shared helpers for the cross-crate integration tests: a deliberately tiny
//! dataset spec so full train-and-solve pipelines stay fast in debug builds.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smore_datasets::{DatasetKind, DatasetSpec, InstanceGenerator, Scale};
use smore_model::Instance;

/// A tiny Delivery-like spec: 4×4 grid, 2 temporal slots (32 sensing tasks),
/// 3–4 workers.
pub fn tiny_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::of(DatasetKind::Delivery, Scale::Small);
    spec.grid_rows = 4;
    spec.grid_cols = 4;
    spec.horizon = 90.0;
    spec.window_len = 45.0;
    spec.workers_per_instance = (3, 4);
    spec.travel_tasks_per_worker = (2, 5);
    spec
}

/// Generates `n` tiny instances deterministically.
pub fn tiny_instances(seed: u64, n: usize) -> Vec<Instance> {
    let generator = InstanceGenerator::new(tiny_spec(), seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| generator.gen_instance(&mut rng, 45.0, 150.0, 1.0, 0.5)).collect()
}
