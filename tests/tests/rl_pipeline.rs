//! The full RL stack: the hierarchically trained GPN TSPTW solver, wrapped
//! in the hybrid repair path, plugged into the SMORE framework.

mod common;

use common::tiny_instances;
use rand::rngs::SmallRng;
use smore::{GreedySelection, SmoreFramework};
use smore_model::{evaluate, UsmdwSolver};
use smore_tsptw::{
    gen::random_worker_problem, train_gpn, GpnConfig, GpnPolicy, GpnSolver, GpnTrainConfig,
    HybridSolver, InsertionSolver, TsptwSolver,
};

#[test]
fn gpn_backed_framework_produces_valid_solutions() {
    let mut policy =
        GpnPolicy::new(GpnConfig { d_model: 16, heads: 2, enc_layers: 1, clip: 10.0 }, 1);
    let cfg = GpnTrainConfig {
        batch: 6,
        iters_lower: 10,
        iters_upper: 10,
        lr: 2e-3,
        length_penalty: 1.0,
        threads: 2,
        micro_batch: 3,
    };
    let mut generator = |r: &mut SmallRng| random_worker_problem(r, 5, 0.5);
    train_gpn(&mut policy, &mut generator, &cfg, 2);

    let hybrid = HybridSolver::new(GpnSolver::new(policy));
    let instances = tiny_instances(17, 2);
    let mut solver = SmoreFramework::new(GreedySelection, hybrid);
    for inst in &instances {
        let sol = solver.solve(inst);
        let stats = evaluate(inst, &sol).unwrap();
        assert!(stats.total_incentive <= inst.budget + 1e-6);
    }
}

#[test]
fn hybrid_never_degrades_below_insertion_alone() {
    // The hybrid keeps the better of (RL, insertion) per call, so a SMORE
    // run backed by the hybrid can only see routes at least as short as the
    // insertion solver's — check on raw TSPTW instances.
    let policy = GpnPolicy::new(GpnConfig { d_model: 16, heads: 2, enc_layers: 1, clip: 10.0 }, 9);
    let hybrid = HybridSolver::new(GpnSolver::new(policy));
    let insertion = InsertionSolver::new();
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    for _ in 0..20 {
        let p = random_worker_problem(&mut rng, 6, 0.5);
        match (hybrid.solve(&p), insertion.solve(&p)) {
            (Ok(h), Ok(i)) => assert!(h.rtt <= i.rtt + 1e-6),
            (Err(_), Ok(i)) => panic!("hybrid failed where insertion found rtt {}", i.rtt),
            _ => {}
        }
    }
}
