//! Cross-crate serialization: instances and trained models round-trip
//! through JSON without behavioural change.

mod common;

use common::tiny_instances;
use smore::{Critic, SmoreSolver, Tasnet, TasnetConfig, TasnetTrainConfig};
use smore_model::{evaluate, Instance, UsmdwSolver};
use smore_tsptw::InsertionSolver;

#[test]
fn instances_roundtrip_through_json() {
    let instances = tiny_instances(3, 2);
    for inst in &instances {
        let json = serde_json::to_string(inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_workers(), inst.n_workers());
        assert_eq!(back.n_tasks(), inst.n_tasks());
        assert_eq!(back.base_rtt, inst.base_rtt);
        assert_eq!(back.sensing_tasks, inst.sensing_tasks);
    }
}

#[test]
fn trained_model_roundtrips_and_reproduces_solutions() {
    let instances = tiny_instances(5, 3);
    let mut cfg = TasnetConfig::for_grid(4, 4);
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.enc_layers = 1;
    let mut net = Tasnet::new(cfg.clone(), 1);
    let mut critic = Critic::new(16, 2);
    let tc = TasnetTrainConfig {
        warmup_epochs: 1,
        epochs: 0,
        batch: 2,
        lr: 1e-3,
        rl_lr: 2e-4,
        critic_lr: 1e-3,
        threads: 2,
        micro_batch: 2,
    };
    smore::train_tasnet(&mut net, &mut critic, &instances[..2], &InsertionSolver::new(), &tc, 3);

    let mut original = SmoreSolver::new(net, critic, InsertionSolver::new());
    let sol = original.solve(&instances[2]);
    let obj = evaluate(&instances[2], &sol).unwrap().objective;

    let (policy_json, critic_json) = original.save_params();
    let mut restored =
        SmoreSolver::load_params(cfg, InsertionSolver::new(), &policy_json, &critic_json).unwrap();
    let sol2 = restored.solve(&instances[2]);
    assert_eq!(sol, sol2);
    assert!((evaluate(&instances[2], &sol2).unwrap().objective - obj).abs() < 1e-12);
}
